"""Deterministic fault-injection plans (:class:`FaultPlan`).

A plan is a seeded, schema-like description of *what goes wrong* during
one parallel region, decoupled from *how* each execution layer realises
it:

* the **process backend** turns a ``kill`` into a genuine
  ``SIGKILL`` of the worker's own process, a ``stall`` into a sleep, a
  ``raise`` into a :class:`~repro.exceptions.FaultInjected` thrown
  inside the mapped function, and ``corrupt-pipe`` into garbage bytes
  written over the result pipe before the worker exits;
* the **threads backend** models ``kill`` as a silent worker-thread
  death (the thread stops claiming work without reporting anything);
* the **simulator** (:mod:`repro.simx.parfor`) turns faults into
  virtual-time events: a killed thread is parked forever, its
  unexecuted iterations re-enter the work queue and are re-issued to
  surviving threads as labelled ``recovery`` trace events.

Determinism: every trigger is counted in claims/iterations, never in
wall time, so a given plan produces the same injection point on every
run.  ``worker=-1`` defers the target choice to the plan's ``seed``
(resolved once by :meth:`FaultPlan.bind`), which keeps randomised plans
reproducible.

Triggers fire **once** per armed spec per run; retry rounds re-create
worker state, so a spec carries the ``round`` it belongs to (default 0,
the initial round) — a plan that kills round 0's worker does not kill
its round-1 replacement unless it says so explicitly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..exceptions import FaultPlanError

__all__ = [
    "KILL",
    "STALL",
    "RAISE",
    "CORRUPT_PIPE",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "parse_fault_plan",
]

KILL = "kill"
STALL = "stall"
RAISE = "raise"
CORRUPT_PIPE = "corrupt-pipe"

#: every fault kind a plan may carry
FAULT_KINDS = (KILL, STALL, RAISE, CORRUPT_PIPE)

#: DSL field name → FaultSpec attribute
_DSL_FIELDS = {
    "worker": "worker",
    "after": "after_claims",
    "after_claims": "after_claims",
    "iteration": "iteration",
    "for": "seconds",
    "seconds": "seconds",
    "round": "round",
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``worker`` targets a worker/thread id (``-1`` = seeded random pick,
    see :meth:`FaultPlan.bind`).  ``after_claims`` arms kill/stall/
    corrupt-pipe faults after the worker's m-th successful work claim
    (static workers make exactly one claim — their whole assignment —
    so ``after_claims > 1`` never fires on a static schedule).
    ``iteration`` arms a ``raise`` fault on a specific loop index,
    wherever it is executed.  ``seconds`` is the stall length: wall
    seconds on real backends, virtual work units in the simulator.
    ``round`` scopes the spec to one retry round (0 = initial attempt).
    """

    kind: str
    worker: int = 0
    after_claims: int = 1
    iteration: Optional[int] = None
    seconds: float = 0.05
    round: int = 0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.worker < -1:
            raise FaultPlanError(
                f"fault worker must be >= 0 (or -1 for seeded), "
                f"got {self.worker}"
            )
        if self.after_claims < 1:
            raise FaultPlanError(
                f"after_claims must be >= 1, got {self.after_claims}"
            )
        if self.round < 0:
            raise FaultPlanError(f"round must be >= 0, got {self.round}")
        if self.kind == RAISE:
            if self.iteration is None or self.iteration < 0:
                raise FaultPlanError(
                    "raise faults need iteration >= 0 "
                    f"(got {self.iteration!r})"
                )
        if self.kind == STALL and not self.seconds >= 0:
            raise FaultPlanError(
                f"stall seconds must be >= 0, got {self.seconds!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "worker": self.worker}
        if self.kind == RAISE:
            out["iteration"] = self.iteration
        else:
            out["after_claims"] = self.after_claims
        if self.kind == STALL:
            out["seconds"] = self.seconds
        if self.round:
            out["round"] = self.round
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = set(data) - {
            "kind", "worker", "after_claims", "iteration", "seconds",
            "round",
        }
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec field(s): {sorted(unknown)}"
            )
        if "kind" not in data:
            raise FaultPlanError("fault spec needs a 'kind'")
        spec = cls(
            kind=str(data["kind"]),
            worker=int(data.get("worker", 0)),
            after_claims=int(data.get("after_claims", 1)),
            iteration=(
                int(data["iteration"])
                if data.get("iteration") is not None
                else None
            ),
            seconds=float(data.get("seconds", 0.05)),
            round=int(data.get("round", 0)),
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded collection of :class:`FaultSpec` records."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        self.validate()

    def validate(self) -> None:
        if self.seed < 0:
            raise FaultPlanError(f"seed must be >= 0, got {self.seed}")
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(
                    f"plan entries must be FaultSpec, got {spec!r}"
                )
            spec.validate()

    def __len__(self) -> int:
        return len(self.faults)

    def bind(self, num_workers: int) -> "FaultPlan":
        """Resolve seeded (``worker=-1``) targets against a worker count.

        Deterministic: the k-th unresolved spec draws the k-th value of
        ``default_rng(seed)``.  Specs naming a worker outside
        ``range(num_workers)`` are dropped (they cannot fire), so a plan
        written for 8 workers degrades gracefully on 2.
        """
        if num_workers < 1:
            raise FaultPlanError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        import numpy as np

        rng = np.random.default_rng(self.seed)
        resolved = []
        for spec in self.faults:
            if spec.worker == -1:
                spec = replace(
                    spec, worker=int(rng.integers(0, num_workers))
                )
            if spec.worker < num_workers:
                resolved.append(spec)
        return FaultPlan(faults=tuple(resolved), seed=self.seed)

    def for_worker(
        self, worker: int, *, round: int = 0
    ) -> Tuple[FaultSpec, ...]:
        """The specs that target one worker in one retry round."""
        return tuple(
            s
            for s in self.faults
            if s.worker == worker and s.round == round
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s): {sorted(unknown)}"
            )
        raw = data.get("faults", [])
        if not isinstance(raw, Iterable) or isinstance(raw, (str, bytes)):
            raise FaultPlanError("'faults' must be a list of fault specs")
        return cls(
            faults=tuple(FaultSpec.from_dict(item) for item in raw),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def single(cls, kind: str, **kwargs: Any) -> "FaultPlan":
        """Convenience constructor for one-fault plans."""
        return cls(faults=(FaultSpec(kind=kind, **kwargs),))


def _parse_dsl_spec(text: str) -> FaultSpec:
    head, _, rest = text.partition(":")
    kind = head.strip()
    data: Dict[str, Any] = {"kind": kind}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in _DSL_FIELDS:
                raise FaultPlanError(
                    f"bad fault field {item!r}; expected "
                    f"{sorted(set(_DSL_FIELDS))} as key=value"
                )
            attr = _DSL_FIELDS[key]
            data[attr] = (
                float(value) if attr == "seconds" else int(value)
            )
    return FaultSpec.from_dict(data)


def parse_fault_plan(text: str, *, seed: int = 0) -> FaultPlan:
    """Parse a plan from a JSON file path, a JSON string, or the DSL.

    The DSL is ``kind:key=value,key=value`` with specs separated by
    ``;`` — e.g. ``"kill:worker=1,after=2;stall:worker=0,for=0.1"``.
    Recognised keys: ``worker``, ``after`` (claims), ``iteration``,
    ``for``/``seconds`` (stall length), ``round``.
    """
    text = text.strip()
    if not text:
        raise FaultPlanError("empty fault plan")
    if os.path.exists(text):
        with open(text, "r", encoding="utf-8") as fh:
            text = fh.read().strip()
    if text.startswith("{") or text.startswith("["):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"bad fault plan JSON: {exc}") from None
        if isinstance(data, list):
            data = {"faults": data, "seed": seed}
        data.setdefault("seed", seed)
        return FaultPlan.from_dict(data)
    specs = tuple(
        _parse_dsl_spec(part)
        for part in text.split(";")
        if part.strip()
    )
    if not specs:
        raise FaultPlanError(f"no fault specs in {text!r}")
    return FaultPlan(faults=specs, seed=seed)
