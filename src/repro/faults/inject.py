"""Worker-side realisation of a :class:`~repro.faults.plan.FaultPlan`.

A :class:`WorkerFaultInjector` is created inside each worker (process
child or thread) for the specs that target it.  The execution backends
call two hooks:

* :meth:`on_claim` — after every successful work claim (a dynamic-
  counter chunk, or the single implicit claim of a static assignment).
  Arms ``kill`` / ``stall`` / ``corrupt-pipe`` specs counted in claims.
* :meth:`on_iteration` — before each loop index runs.  Arms ``raise``
  specs pinned to an iteration.

Each armed spec fires at most once.  ``kill`` delivers a *real*
``SIGKILL`` to the calling process when ``hard=True`` (process
backend) and raises :class:`ThreadDeath` otherwise (threads backend,
where killing the process would take the whole interpreter down).
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, List, Optional

from ..exceptions import FaultInjected
from .plan import CORRUPT_PIPE, KILL, RAISE, STALL, FaultPlan, FaultSpec

__all__ = ["ThreadDeath", "WorkerFaultInjector"]

#: bytes a corrupt-pipe fault writes over the result pipe; deliberately
#: not a valid pickle so the parent's ``recv`` raises mid-decode
CORRUPT_PAYLOAD = b"\x00repro-fault-corrupt\xff"


class ThreadDeath(BaseException):
    """Injected in-thread stand-in for a worker death.

    Derives from ``BaseException`` so application-level ``except
    Exception`` blocks inside loop bodies cannot swallow it — like a
    real SIGKILL, nothing user-level gets to veto it.
    """

    def __init__(self, worker: int, spec: FaultSpec) -> None:
        super().__init__(f"injected death of worker {worker} ({spec.kind})")
        self.worker = worker
        self.spec = spec


class WorkerFaultInjector:
    """Consumes one worker's fault specs as execution progresses."""

    __slots__ = ("worker", "hard", "claims", "_armed", "_sleep")

    def __init__(
        self,
        plan: Optional[FaultPlan],
        worker: int,
        *,
        round: int = 0,
        hard: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.worker = worker
        self.hard = hard
        self.claims = 0
        self._sleep = sleep
        self._armed: List[FaultSpec] = (
            list(plan.for_worker(worker, round=round)) if plan else []
        )

    def __bool__(self) -> bool:
        return bool(self._armed)

    def _die(self, spec: FaultSpec, conn=None) -> None:
        if spec.kind == CORRUPT_PIPE and conn is not None:
            try:
                conn.send_bytes(CORRUPT_PAYLOAD)
            except OSError:  # parent already gone; just die
                pass
        if self.hard:
            os.kill(os.getpid(), signal.SIGKILL)
            # pragma: no cover — unreachable after SIGKILL
        raise ThreadDeath(self.worker, spec)

    def on_claim(self, conn=None) -> None:
        """Hook after a successful work claim; may stall or never return."""
        if not self._armed:
            return
        self.claims += 1
        keep: List[FaultSpec] = []
        fatal: Optional[FaultSpec] = None
        for spec in self._armed:
            if spec.kind == RAISE or self.claims < spec.after_claims:
                keep.append(spec)
            elif spec.kind == STALL:
                self._sleep(spec.seconds)  # consumed
            elif fatal is None:
                fatal = spec  # kill / corrupt-pipe: consumed below
            else:
                keep.append(spec)
        self._armed = keep
        if fatal is not None:
            self._die(fatal, conn)  # no return

    def on_iteration(self, i: int) -> None:
        """Hook before iteration ``i`` executes; may raise FaultInjected."""
        if not self._armed:
            return
        for spec in self._armed:
            if spec.kind == RAISE and spec.iteration == i:
                self._armed = [s for s in self._armed if s is not spec]
                raise FaultInjected(
                    f"injected failure at iteration {i} "
                    f"(worker {self.worker})"
                )
