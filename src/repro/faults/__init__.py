"""``repro.faults`` — deterministic fault injection and crash recovery.

The paper's scheduling claims are about tolerance to *uneven* workers;
this package extends that to *misbehaving* workers, the production
north-star of ROADMAP.md.  It has two halves:

* **Planning** (:mod:`repro.faults.plan`) — :class:`FaultPlan`, a
  seeded, schema-like description of what goes wrong (kill worker k
  after m claims, stall a thread, raise inside the mapped function at
  iteration i, corrupt a result pipe), parseable from JSON or a compact
  DSL (``repro-apsp solve --fault-plan "kill:worker=1,after=2"``).
* **Injection** (:mod:`repro.faults.inject`) —
  :class:`WorkerFaultInjector`, the worker-side runtime each backend
  consults at claim/iteration boundaries.

Recovery semantics live in the execution layers themselves:
:func:`repro.parallel.backends.process.run_parallel_map` detects dead
workers via ``multiprocessing.connection.wait`` over pipes *and*
process sentinels and re-executes only the lost index ranges;
the threads backend re-runs iterations a dead thread never reported;
:func:`repro.simx.parfor.simulate_parallel_for` replays faults in
virtual time (requeued chunks become labelled ``recovery`` events).
Recovery cost is observable as ``faults.*`` counters and
``faults.recovery`` spans (see ``docs/robustness.md``).
"""

from .inject import ThreadDeath, WorkerFaultInjector
from .store import StoreCorruptionSpec, parse_store_corruption
from .plan import (
    CORRUPT_PIPE,
    FAULT_KINDS,
    KILL,
    RAISE,
    STALL,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)

__all__ = [
    "KILL",
    "STALL",
    "RAISE",
    "CORRUPT_PIPE",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "parse_fault_plan",
    "ThreadDeath",
    "WorkerFaultInjector",
    "StoreCorruptionSpec",
    "parse_store_corruption",
]
