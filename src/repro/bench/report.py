"""Report writers: CSV rows for plotting, and a summary index.

The text reports (``ExperimentResult.render``) are for reading; the CSV
export feeds external plotting (matplotlib, gnuplot, a spreadsheet) so
the paper's figures can be redrawn graphically from the same data.
"""

from __future__ import annotations

import csv
import os
from typing import List, Tuple

from .experiments import ExperimentResult

__all__ = ["write_csv", "write_series_csv", "write_summary", "export_all"]


def write_csv(result: ExperimentResult, target: str) -> None:
    """Write the experiment's table rows as CSV (headers included)."""
    with open(target, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)


def write_series_csv(result: ExperimentResult, target: str) -> None:
    """Write the plot series in long format: series,x,y."""
    with open(target, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("series", "x", "y"))
        for name, points in result.series.items():
            for x, y in points:
                writer.writerow((name, x, y))


def write_summary(
    results: List[Tuple[str, ExperimentResult, float]],
    target: str,
) -> None:
    """One-page markdown index of a harness run: id, verdict, observed."""
    lines = [
        "# Experiment summary",
        "",
        "| experiment | shape holds | runtime (s) |",
        "|---|---|---|",
    ]
    for exp_id, result, seconds in results:
        lines.append(f"| {exp_id} | {result.holds} | {seconds:.1f} |")
    lines.append("")
    for exp_id, result, _seconds in results:
        lines.append(f"## {exp_id}: {result.title}")
        lines.append("")
        lines.append(f"*claim*: {result.paper_claim}")
        lines.append("")
        lines.append(f"*observed*: {result.observed}")
        lines.append("")
    with open(target, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))


def export_all(
    results: List[Tuple[str, ExperimentResult, float]],
    directory: str,
) -> List[str]:
    """Write CSV (rows + series) and the markdown summary for a run."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for exp_id, result, _ in results:
        rows_path = os.path.join(directory, f"{exp_id}.csv")
        write_csv(result, rows_path)
        written.append(rows_path)
        if result.series:
            series_path = os.path.join(directory, f"{exp_id}_series.csv")
            write_series_csv(result, series_path)
            written.append(series_path)
    summary_path = os.path.join(directory, "SUMMARY.md")
    write_summary(results, summary_path)
    written.append(summary_path)
    return written
