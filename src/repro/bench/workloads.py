"""Workload profiles for the experiment harness.

Every experiment in :mod:`repro.bench.experiments` reads its graph
scale, thread sweep and machine from here.  Two profiles:

* ``quick`` — sizes tuned so the whole suite finishes in a few minutes
  under ``pytest benchmarks/``; shapes (who wins, crossovers) are
  already stable at these scales.
* ``full``  — the scales EXPERIMENTS.md quotes; the CLI default.

Ordering-only experiments use much larger graphs than APSP experiments:
an ordering pass is O(n) while an APSP solve is ≈O(n^2.4), and the
paper does the same (§4.3 tests ordering alone on soc-Pokec /
soc-LiveJournal1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import BenchmarkError
from ..graphs.csr import CSRGraph
from ..graphs.datasets import load_dataset
from ..simx.machine import MACHINE_I, MACHINE_II, MachineSpec

__all__ = ["Profile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class Profile:
    """Scales and sweeps for one harness run."""

    name: str
    #: vertex count for APSP experiments (per dataset; None = registry default)
    apsp_scale: int | None
    #: vertex count for ordering-only experiments
    ordering_scale: int
    #: vertex count for the big §4.3 ordering graphs (soc-Pokec / soc-LJ)
    large_ordering_scale: int
    #: thread sweep on Machine-I (16 cores)
    threads_machine_i: Tuple[int, ...]
    #: thread sweep on Machine-II (32 cores)
    threads_machine_ii: Tuple[int, ...]
    #: sizes for the complexity-exponent sweep
    complexity_sizes: Tuple[int, ...]

    @property
    def machine_i(self) -> MachineSpec:
        return MACHINE_I

    @property
    def machine_ii(self) -> MachineSpec:
        return MACHINE_II

    def apsp_graph(self, name: str) -> CSRGraph:
        return load_dataset(name, scale=self.apsp_scale)

    def ordering_graph(self, name: str) -> CSRGraph:
        scale = (
            self.large_ordering_scale
            if name.lower().startswith("soc")
            else self.ordering_scale
        )
        return load_dataset(name, scale=scale)


PROFILES = {
    "quick": Profile(
        name="quick",
        apsp_scale=500,
        ordering_scale=20_000,
        large_ordering_scale=40_000,
        threads_machine_i=(1, 2, 4, 8, 16),
        threads_machine_ii=(1, 2, 4, 8, 16, 32),
        complexity_sizes=(100, 160, 250, 400, 640),
    ),
    "full": Profile(
        name="full",
        apsp_scale=None,  # registry defaults (≈900–1400 vertices)
        ordering_scale=50_000,
        large_ordering_scale=100_000,
        threads_machine_i=(1, 2, 4, 8, 16),
        threads_machine_ii=(1, 2, 4, 8, 16, 32),
        complexity_sizes=(150, 250, 400, 650, 1000, 1600),
    ),
}


def get_profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown profile {name!r}; known: {', '.join(PROFILES)}"
        ) from None
