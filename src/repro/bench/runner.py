"""Harness driver: run experiments, collect reports, save them.

Used by the CLI (``python -m repro bench``) and by the pytest benchmark
modules under ``benchmarks/``.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Tuple

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .workloads import Profile, get_profile

__all__ = ["run_many", "save_report"]


def run_many(
    ids: Optional[Iterable[str]] = None,
    *,
    profile: "Profile | str" = "quick",
    verbose: bool = False,
) -> List[Tuple[str, ExperimentResult, float]]:
    """Run a set of experiments; returns (id, result, seconds) triples."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    targets = list(ids) if ids is not None else list(EXPERIMENTS)
    out: List[Tuple[str, ExperimentResult, float]] = []
    for exp_id in targets:
        t0 = time.perf_counter()
        result = run_experiment(exp_id, profile)
        dt = time.perf_counter() - t0
        out.append((exp_id, result, dt))
        if verbose:
            print(result.render())
            print(f"[{exp_id} finished in {dt:.1f}s]\n")
    return out


def save_report(
    results: List[Tuple[str, ExperimentResult, float]],
    directory: str,
) -> List[str]:
    """Write one text file per experiment; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for exp_id, result, dt in results:
        path = os.path.join(directory, f"{exp_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(result.render())
            fh.write(f"\n\n[harness runtime: {dt:.1f}s]\n")
        paths.append(path)
    return paths
