"""Experiments for the extension features beyond the paper's figures.

* ``adaptive-vs-opt`` — Peng et al.'s adaptive variant vs the static
  optimized order.  The ICPP paper skipped parallelising it because the
  measured gain was "relatively small" (§2.2); this experiment checks
  that premise.
* ``distributed-scaling`` — the paper's §7 future work: ParAPSP across
  a simulated cluster.  Reports makespan, the extra work caused by the
  delayed remote-row reuse, and the network volume, for a fast and a
  commodity interconnect.
"""

from __future__ import annotations

from ...core.adaptive import seq_adaptive
from ...core.runner import solve_apsp
from ...dist import ClusterSpec, simulate_distributed_apsp
from ..workloads import Profile
from .common import ExperimentResult

__all__ = ["run_adaptive_vs_opt", "run_distributed_scaling"]


def run_adaptive_vs_opt(profile: Profile) -> ExperimentResult:
    rows = []
    gains = {}
    for dataset in ("WordNet", "Flickr"):
        graph = profile.apsp_graph(dataset)
        opt = solve_apsp(graph, algorithm="seq-opt")
        ada = seq_adaptive(graph)
        wo, wa = opt.ops.total_work(), ada.ops.total_work()
        gains[dataset] = wo / wa
        rows.append((dataset, graph.num_vertices, wo, wa, round(wo / wa, 3)))
    # the paper's premise: the adaptive gain is small (here: within
    # ±25% of the static optimized order, in either direction)
    small_gain = all(0.75 <= g <= 1.25 for g in gains.values())
    observed = (
        "adaptive/optimized work gains: "
        + ", ".join(f"{d}={g:.3f}x" for d, g in gains.items())
        + f"; gain small (paper's premise for not parallelising): "
        f"{small_gain}"
    )
    return ExperimentResult(
        id="adaptive-vs-opt",
        title="adaptive optimized order vs static optimized order",
        paper_claim=(
            "the performance gain of the adaptive optimized algorithm "
            "over the optimized algorithm is relatively small (§2.2)"
        ),
        headers=("dataset", "n", "optimized work", "adaptive work",
                 "opt/adaptive"),
        rows=rows,
        observed=observed,
        holds=small_gain,
    )


def run_distributed_scaling(profile: Profile) -> ExperimentResult:
    graph = profile.apsp_graph("WordNet")
    rows = []
    series = {}
    base = None
    trade_off_seen = True
    for latency_profile, (lat, beta) in (
        ("fast", (4_000.0, 0.6)),
        ("commodity", (40_000.0, 6.0)),
    ):
        prev_work = None
        for nodes in (1, 2, 4):
            cluster = ClusterSpec(
                name=f"{latency_profile}-{nodes}n",
                num_nodes=nodes,
                threads_per_node=8,
                latency=lat,
                per_element_cost=beta,
            )
            r = simulate_distributed_apsp(graph, cluster)
            if base is None:
                base = r.makespan
            rows.append(
                (
                    latency_profile,
                    nodes,
                    cluster.total_workers,
                    r.makespan,
                    round(base / r.makespan, 2),
                    r.total_work,
                    r.network_bytes,
                )
            )
            series.setdefault(latency_profile, []).append(
                (nodes * 8, base / r.makespan)
            )
            if prev_work is not None and r.total_work < prev_work * 0.999:
                trade_off_seen = False
            prev_work = r.total_work
    observed = (
        "adding nodes keeps reducing makespan while total work *grows* "
        f"(delayed remote-row reuse): {trade_off_seen}; commodity network "
        "pays more extra work than the fast interconnect"
    )
    return ExperimentResult(
        id="distributed-scaling",
        title="distributed ParAPSP on a simulated cluster (§7 future work)",
        paper_claim=(
            "future work: extend ParAPSP to distributed memory for larger "
            "graphs (no measurements in the paper)"
        ),
        headers=(
            "network",
            "nodes",
            "workers",
            "makespan",
            "speedup vs 8-worker node",
            "total work",
            "network bytes",
        ),
        rows=rows,
        series=series,
        xlabel="workers",
        ylabel="speedup",
        observed=observed,
        holds=trade_off_seen,
    )
