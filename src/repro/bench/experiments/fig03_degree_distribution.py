"""Figure 3 — the degree distribution of the WordNet graph.

Paper: log–log scatter showing the power law; most vertices have very
low degree, which is why they pile into the few lowest buckets and
cause ParBuckets' lock contention (§4.2).
"""

from __future__ import annotations

from ...analysis.distribution import degree_distribution, powerlaw_slope
from ..workloads import Profile
from .common import ExperimentResult

EXPERIMENT_ID = "fig3"


def run(profile: Profile) -> ExperimentResult:
    graph = profile.apsp_graph("WordNet")
    dist = degree_distribution(graph)
    slope = powerlaw_slope(dist)
    ks, counts = dist.nonzero_points()
    rows = [
        ("min degree", dist.min_degree),
        ("max degree", dist.max_degree),
        ("mean degree", round(dist.mean_degree, 2)),
        ("median degree", dist.median_degree),
        ("vertices below 1% of max degree",
         f"{dist.below_one_percent_of_max:.1%}"),
        ("log-log slope (≈ -gamma)", round(slope, 2)),
    ]
    series = {
        "degree histogram": [
            (float(k), float(c)) for k, c in zip(ks, counts)
        ]
    }
    power_law = slope < -1.0
    skewed = dist.median_degree <= 0.05 * dist.max_degree
    observed = (
        f"slope {slope:.2f} (power law: {power_law}); median degree "
        f"{dist.median_degree:g} ≪ max {dist.max_degree} (skewed: {skewed})"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title=f"WordNet degree distribution (n={graph.num_vertices})",
        paper_claim=(
            "power-law degree distribution: most vertices have very low "
            "degree, a handful of hubs dominate"
        ),
        headers=("statistic", "value"),
        rows=rows,
        series=series,
        log_y=True,
        xlabel="degree",
        ylabel="#vertices",
        observed=observed,
        holds=bool(power_law and skewed),
    )
