"""Figure 1 — the effect of the scheduling scheme on ParAlg2.

Paper: on ca-HepPh, ``schedule(static, 1)`` and ``schedule(dynamic, 1)``
clearly outperform the default block partitioning, and dynamic edges out
static, because only the cyclic schemes keep the SSSP issue order close
to the descending-degree order the optimization needs.
"""

from __future__ import annotations

from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

EXPERIMENT_ID = "fig1"
SCHEDULES = ("block", "static-cyclic", "dynamic")


def run(profile: Profile) -> ExperimentResult:
    dataset = "ca-HepPh"
    rows = []
    series = {s: [] for s in SCHEDULES}
    totals = {}
    for schedule in SCHEDULES:
        for T in profile.threads_machine_i:
            _, _, total = apsp_sim(
                dataset,
                profile.apsp_scale,
                "paralg2",
                T,
                schedule,
                "I",
            )
            rows.append((schedule, T, total))
            series[schedule].append((T, total))
            totals[(schedule, T)] = total
    t_max = max(profile.threads_machine_i)
    block = totals[("block", t_max)]
    static = totals[("static-cyclic", t_max)]
    dynamic = totals[("dynamic", t_max)]
    cyclic_beats_block = static < block and dynamic < block
    dynamic_leads = dynamic <= static
    observed = (
        f"at {t_max} threads: block={block:.3g}, static-cyclic={static:.3g}, "
        f"dynamic={dynamic:.3g} — cyclic beats block: {cyclic_beats_block}, "
        f"dynamic ≤ static: {dynamic_leads}"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="ParAlg2 runtime vs schedule (ca-HepPh stand-in)",
        paper_claim=(
            "static/dynamic cyclic outperform default block partitioning; "
            "dynamic-cyclic slightly outperforms static-cyclic"
        ),
        headers=("schedule", "threads", "elapsed (work units)"),
        rows=rows,
        series=series,
        ylabel="elapsed",
        observed=observed,
        holds=bool(cyclic_beats_block and dynamic_leads),
    )
