"""Ablation experiments beyond the paper's own figures (DESIGN.md §4).

Each probes one design choice the paper fixes without measurement:
the queue discipline inside Algorithm 1, ParMax's 1 % threshold,
MultiLists' parRatio, the dynamic chunk size, the degree definition for
directed graphs — plus two claims quoted from the text: the sequential
optimized-vs-basic factor and Peng et al.'s O(n^2.4) empirical
complexity.
"""

from __future__ import annotations

import numpy as np

from ...analysis.complexity import fit_exponent
from ...core.runner import solve_apsp
from ...graphs.datasets import table2_names
from ...graphs.degree import degree_array
from ...graphs.generators import powerlaw_configuration
from ...order import simulate_multilists, simulate_par_max
from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

__all__ = [
    "run_seq_basic_vs_opt",
    "run_complexity_exponent",
    "run_queue_discipline",
    "run_parmax_threshold",
    "run_multilists_parratio",
    "run_chunk_size",
    "run_degree_kind",
]


def run_seq_basic_vs_opt(profile: Profile) -> ExperimentResult:
    """§2 claim: the optimized algorithm is 2–4× faster than the basic."""
    rows = []
    ratios = {}
    for dataset in table2_names():
        graph = profile.apsp_graph(dataset)
        basic = solve_apsp(graph, algorithm="seq-basic")
        opt = solve_apsp(graph, algorithm="seq-opt")
        wb = basic.ops.total_work()
        wo = opt.ops.total_work()
        ratios[dataset] = wb / wo
        rows.append((dataset, graph.num_vertices, wb, wo, round(wb / wo, 1)))
    all_win = all(r > 1.0 for r in ratios.values())
    observed = (
        f"optimized wins on every dataset: {all_win}; factors "
        + ", ".join(f"{d}={r:.1f}x" for d, r in ratios.items())
    )
    return ExperimentResult(
        id="seq-basic-vs-opt",
        title="sequential basic vs optimized APSP (total work)",
        paper_claim="the optimized algorithm is 2–4x faster than the basic",
        headers=("dataset", "n", "basic work", "optimized work", "ratio"),
        rows=rows,
        observed=observed,
        holds=all_win,
        notes=[
            "scaled stand-ins exaggerate the factor on sparse graphs "
            "(hubs dominate more strongly at small n); the denser "
            "stand-ins land in the paper's 2–4x band"
        ],
    )


def run_complexity_exponent(profile: Profile) -> ExperimentResult:
    """Peng et al.: the basic algorithm runs in ≈O(n^2.4) empirically."""
    sizes = profile.complexity_sizes
    works = []
    rows = []
    for n in sizes:
        # natural √n degree cutoff keeps the *distribution* fixed while n
        # grows — the methodology a complexity fit needs (a ceiling that
        # grows linearly in n would densify the graphs and inflate the
        # exponent)
        graph = powerlaw_configuration(
            n, 2.4, min_degree=2,
            max_degree=max(8, int(round(n**0.5))), seed=1234,
        )
        result = solve_apsp(graph, algorithm="seq-basic")
        works.append(float(result.ops.total_work()))
        rows.append((n, graph.num_edges, works[-1]))
    fit = fit_exponent(sizes, works)
    in_band = 1.8 <= fit.exponent <= 2.9
    observed = (
        f"fitted exponent {fit.exponent:.2f} (R²={fit.r_squared:.3f}); "
        f"within the sub-cubic band (1.8–2.9): {in_band}"
    )
    return ExperimentResult(
        id="complexity-exponent",
        title="empirical complexity of the basic algorithm on scale-free "
        "graphs",
        paper_claim="Peng et al. measured ≈O(n^2.4) (quoted throughout)",
        headers=("n", "edges", "total work"),
        rows=rows,
        series={"work": [(float(n), w) for n, w in zip(sizes, works)]},
        log_y=True,
        xlabel="n",
        ylabel="work",
        observed=observed,
        holds=in_band,
    )


def run_queue_discipline(profile: Profile) -> ExperimentResult:
    """FIFO (SPFA, the paper's queue) vs binary heap inside Algorithm 1."""
    rows = []
    ratios = []
    for dataset in ("WordNet", "Flickr"):
        graph = profile.apsp_graph(dataset)
        for q in ("fifo", "heap"):
            r = solve_apsp(graph, algorithm="seq-opt", queue=q)
            rows.append((dataset, q, r.ops.total_work(), r.ops.pops))
        ratios.append(rows[-2][2] / rows[-1][2])
    observed = (
        "both disciplines produce identical distances (asserted in tests); "
        f"work ratios fifo/heap: {', '.join(f'{r:.2f}' for r in ratios)}"
    )
    return ExperimentResult(
        id="queue-discipline",
        title="Algorithm 1 queue discipline: FIFO (paper) vs binary heap",
        paper_claim="the paper uses a plain queue; no comparison given",
        headers=("dataset", "queue", "total work", "queue pops"),
        rows=rows,
        observed=observed,
    )


def run_parmax_threshold(profile: Profile) -> ExperimentResult:
    """ParMax's 1 %-of-max threshold (§4.2) swept around the default."""
    graph = profile.ordering_graph("WordNet")
    degrees = degree_array(graph)
    T = 8
    rows = []
    times = {}
    for threshold in (0.002, 0.005, 0.01, 0.02, 0.05, 0.1):
        r = simulate_par_max(
            degrees, profile.machine_i, num_threads=T, threshold=threshold
        )
        times[threshold] = r.virtual_time
        rows.append(
            (
                threshold,
                r.virtual_time,
                int(r.stats["parallel_inserts"]),
                int(r.stats["lock_contended"]),
            )
        )
    best = min(times, key=times.get)  # type: ignore[arg-type]
    observed = (
        f"best threshold at T={T}: {best:g} (paper default 0.01 within "
        f"{times[0.01] / times[best]:.2f}x of best)"
    )
    return ExperimentResult(
        id="parmax-threshold",
        title=f"ParMax threshold sweep (WordNet @ {graph.num_vertices}, "
        f"{T} threads)",
        paper_claim="threshold fixed at 1% of the max degree, unmeasured",
        headers=(
            "threshold (x max deg)",
            "ordering time",
            "parallel inserts",
            "contended",
        ),
        rows=rows,
        observed=observed,
    )


def run_multilists_parratio(profile: Profile) -> ExperimentResult:
    """MultiLists' parRatio = 0.1 (§4.3) swept around the default."""
    graph = profile.ordering_graph("WordNet")
    degrees = degree_array(graph)
    T = 8
    rows = []
    times = {}
    for ratio in (0.02, 0.05, 0.1, 0.2, 0.5, 1.0):
        r = simulate_multilists(
            degrees, profile.machine_i, num_threads=T, par_ratio=ratio
        )
        times[ratio] = r.virtual_time
        rows.append((ratio, r.virtual_time, int(r.stats["parallel_regions"])))
    best = min(times, key=times.get)  # type: ignore[arg-type]
    observed = (
        f"best parRatio at T={T}: {best:g}; paper default 0.1 within "
        f"{times[0.1] / times[best]:.2f}x of best"
    )
    return ExperimentResult(
        id="multilists-parratio",
        title=f"MultiLists parRatio sweep (WordNet @ {graph.num_vertices}, "
        f"{T} threads)",
        paper_claim=(
            "parRatio fixed at 0.1: ~99% of vertices lie in the low range, "
            "parallelising the high range would only add false sharing"
        ),
        headers=("parRatio", "ordering time", "parallel regions"),
        rows=rows,
        observed=observed,
    )


def run_chunk_size(profile: Profile) -> ExperimentResult:
    """schedule(dynamic, chunk): chunk=1 preserves the issue order."""
    rows = []
    times = {}
    for chunk in (1, 4, 16, 64):
        _, dij, total = apsp_sim(
            "WordNet",
            profile.apsp_scale,
            "parapsp",
            8,
            "dynamic",
            "I",
            chunk=chunk,
        )
        times[chunk] = total
        rows.append((chunk, dij, total))
    observed = (
        f"chunk=1 total {times[1]:.3g} vs chunk=64 {times[64]:.3g} "
        f"({times[64] / times[1]:.2f}x)"
    )
    return ExperimentResult(
        id="chunk-size",
        title="dynamic-schedule chunk size (ParAPSP, WordNet, 8 threads)",
        paper_claim=(
            "the paper uses schedule(dynamic, 1) so execution order equals "
            "the computed order exactly"
        ),
        headers=("chunk", "dijkstra time", "total time"),
        rows=rows,
        observed=observed,
    )


def run_degree_kind(profile: Profile) -> ExperimentResult:
    """Out/in/total degree for ordering a *directed* graph."""
    graph = profile.apsp_graph("ego-Twitter")
    rows = []
    works = {}
    for kind in ("out", "in", "total"):
        r = solve_apsp(graph, algorithm="seq-opt", degree_kind=kind)
        works[kind] = r.ops.total_work()
        rows.append((kind, works[kind], r.ops.row_merges))
    best = min(works, key=works.get)  # type: ignore[arg-type]
    observed = f"least total work with {best}-degree ordering"
    return ExperimentResult(
        id="degree-kind",
        title="degree definition for directed ordering (ego-Twitter)",
        paper_claim="unspecified in the paper; we default to out-degree",
        headers=("degree kind", "total work", "row merges"),
        rows=rows,
        observed=observed,
    )
