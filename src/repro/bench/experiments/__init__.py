"""Experiment registry: every table and figure of the paper plus the
DESIGN.md §4 ablations, keyed by experiment id."""

from typing import Callable, Dict, Tuple

from ..workloads import Profile
from . import (
    ablations,
    extensions,
    related_work,
    fig01_scheduling,
    fig03_degree_distribution,
    fig04_parmax,
    fig05_dijkstra_part,
    fig06_multilists,
    fig07_paralg1_vs_paralg2,
    fig08_overall,
    fig09_speedup,
    fig10_parapsp,
    table1_ordering,
    table2_datasets,
)
from .common import ExperimentResult

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment", "ExperimentResult"]

EXPERIMENTS: Dict[str, Callable[[Profile], ExperimentResult]] = {
    "table1": table1_ordering.run,
    "table2": table2_datasets.run,
    "fig1": fig01_scheduling.run,
    "fig3": fig03_degree_distribution.run,
    "fig4": fig04_parmax.run,
    "fig5": fig05_dijkstra_part.run,
    "fig6": fig06_multilists.run,
    "fig7": fig07_paralg1_vs_paralg2.run,
    "fig8": fig08_overall.run,
    "fig9": fig09_speedup.run,
    "fig10": fig10_parapsp.run,
    "seq-basic-vs-opt": ablations.run_seq_basic_vs_opt,
    "complexity-exponent": ablations.run_complexity_exponent,
    "queue-discipline": ablations.run_queue_discipline,
    "parmax-threshold": ablations.run_parmax_threshold,
    "multilists-parratio": ablations.run_multilists_parratio,
    "chunk-size": ablations.run_chunk_size,
    "degree-kind": ablations.run_degree_kind,
    "adaptive-vs-opt": extensions.run_adaptive_vs_opt,
    "related-work": related_work.run_related_work,
    "distributed-scaling": extensions.run_distributed_scaling,
}


def experiment_ids() -> Tuple[str, ...]:
    return tuple(EXPERIMENTS)


def run_experiment(exp_id: str, profile: Profile) -> ExperimentResult:
    from ...exceptions import BenchmarkError

    if exp_id not in EXPERIMENTS:
        raise BenchmarkError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id](profile)
