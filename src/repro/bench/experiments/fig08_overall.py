"""Figure 8 — overall elapsed time: ParAlg1, ParAlg2, ParAPSP.

Paper (WordNet): ParAlg2 and ParAPSP sit well below ParAlg1; ParAPSP
matches ParAlg2 at one thread and pulls ahead as threads grow, because
its MultiLists ordering removes ParAlg2's sequential O(n²) overhead.
"""

from __future__ import annotations

from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

EXPERIMENT_ID = "fig8"
ALGOS = ("paralg1", "paralg2", "parapsp")


def collect(profile: Profile):
    """(algo, T) -> (ordering, dijkstra, total); shared with Figure 9."""
    data = {}
    for algo in ALGOS:
        for T in profile.threads_machine_i:
            data[(algo, T)] = apsp_sim(
                "WordNet", profile.apsp_scale, algo, T, "dynamic", "I"
            )
    return data


def run(profile: Profile) -> ExperimentResult:
    data = collect(profile)
    rows = []
    series = {a: [] for a in ALGOS}
    for algo in ALGOS:
        for T in profile.threads_machine_i:
            ordering, dijkstra, total = data[(algo, T)]
            rows.append((algo, T, ordering, dijkstra, total))
            series[algo].append((T, total))
    ts = list(profile.threads_machine_i)
    tot = {k: v[2] for k, v in data.items()}
    opt_wins = all(
        tot[("paralg2", t)] < tot[("paralg1", t)]
        and tot[("parapsp", t)] < tot[("paralg1", t)]
        for t in ts
    )
    close_at_1 = (
        abs(tot[("parapsp", 1)] - tot[("paralg2", 1)])
        <= 0.25 * tot[("paralg2", 1)]
    )
    gaps = [tot[("paralg2", t)] / tot[("parapsp", t)] for t in ts]
    gap_grows = gaps[-1] > gaps[0]
    observed = (
        f"ordered algorithms below ParAlg1 everywhere: {opt_wins}; "
        f"ParAPSP ≈ ParAlg2 at 1 thread: {close_at_1}; ParAlg2/ParAPSP "
        f"gap grows with threads ({gaps[0]:.2f}x → {gaps[-1]:.2f}x): "
        f"{gap_grows}"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="overall elapsed time, ParAlg1 / ParAlg2 / ParAPSP (WordNet)",
        paper_claim=(
            "ParAlg2 and ParAPSP beat ParAlg1; ParAPSP ≈ ParAlg2 at one "
            "thread and the gap grows with the thread count"
        ),
        headers=(
            "algorithm",
            "threads",
            "ordering",
            "dijkstra",
            "total (work units)",
        ),
        rows=rows,
        series=series,
        log_y=True,
        ylabel="elapsed",
        observed=observed,
        holds=bool(opt_wins and close_at_1 and gap_grows),
    )
