"""Figure 5 — Dijkstra-phase elapsed time under different orderings.

Paper (WordNet): running ParAlg2's sweep with ParBuckets' *approximate*
order costs real Dijkstra time compared to the precise descending order;
ParMax's exact order matches ParAlg2's selection order.  Conclusion:
the precise order matters, coarse bucketing is not enough (§4.2).
"""

from __future__ import annotations

from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

EXPERIMENT_ID = "fig5"
ORDERINGS = ("selection", "parbuckets", "parmax")


def run(profile: Profile) -> ExperimentResult:
    dataset = "WordNet"
    rows = []
    series = {o: [] for o in ORDERINGS}
    dijkstra = {}
    for ordering in ORDERINGS:
        for T in profile.threads_machine_i:
            _, dij, _ = apsp_sim(
                dataset,
                profile.apsp_scale,
                "paralg2",
                T,
                "dynamic",
                "I",
                ordering=ordering,
            )
            dijkstra[(ordering, T)] = dij
            rows.append((ordering, T, dij))
            series[ordering].append((T, dij))
    ts = list(profile.threads_machine_i)
    # exact orders (selection, parmax) should track each other closely;
    # the approximate order should cost extra Dijkstra time
    approx_worse = sum(
        dijkstra[("parbuckets", t)] >= 0.999 * dijkstra[("parmax", t)]
        for t in ts
    ) >= len(ts) - 1
    exact_close = all(
        abs(dijkstra[("selection", t)] - dijkstra[("parmax", t)])
        <= 0.15 * dijkstra[("parmax", t)]
        for t in ts
    )
    observed = (
        f"approximate (ParBuckets) order ≥ exact orders at nearly every T: "
        f"{approx_worse}; selection ≈ ParMax within 15%: {exact_close}"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="Dijkstra-phase time under selection / ParBuckets / ParMax "
        "orders (WordNet)",
        paper_claim=(
            "the approximate ParBuckets order slows the Dijkstra phase; "
            "exact orders (ParAlg2's selection, ParMax) perform alike"
        ),
        headers=("ordering", "threads", "dijkstra time (work units)"),
        rows=rows,
        series=series,
        ylabel="dijkstra time",
        observed=observed,
        holds=bool(approx_worse and exact_close),
    )
