"""Figure 7 — ParAlg1 vs ParAlg2 elapsed time (log scale).

Paper (Flickr): both scale near-linearly with threads; ParAlg2 sits a
constant factor below ParAlg1 (≈2× on Flickr, 2–4× across datasets)
thanks to the descending-degree issue order.
"""

from __future__ import annotations

from ...analysis.metrics import speedup_curve
from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

EXPERIMENT_ID = "fig7"


def run(profile: Profile) -> ExperimentResult:
    dataset = "Flickr"
    rows = []
    series = {"paralg1": [], "paralg2": []}
    totals = {}
    for algo in ("paralg1", "paralg2"):
        for T in profile.threads_machine_i:
            _, _, total = apsp_sim(
                dataset, profile.apsp_scale, algo, T, "dynamic", "I"
            )
            totals[(algo, T)] = total
            rows.append((algo, T, total))
            series[algo].append((T, total))
    ts = list(profile.threads_machine_i)
    alg2_wins = all(totals[("paralg2", t)] < totals[("paralg1", t)] for t in ts)
    factor_1 = totals[("paralg1", 1)] / totals[("paralg2", 1)]
    factor_max = totals[("paralg1", ts[-1])] / totals[("paralg2", ts[-1])]
    s1 = speedup_curve(ts, [totals[("paralg1", t)] for t in ts])[ts[-1]]
    s2 = speedup_curve(ts, [totals[("paralg2", t)] for t in ts])[ts[-1]]
    observed = (
        f"ParAlg2 below ParAlg1 at every T: {alg2_wins}; factor "
        f"{factor_1:.1f}x at 1 thread, {factor_max:.1f}x at {ts[-1]}; "
        f"speedups at {ts[-1]} threads: ParAlg1 {s1:.1f}x, ParAlg2 {s2:.1f}x"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="ParAlg1 vs ParAlg2 elapsed time (Flickr stand-in, log y)",
        paper_claim=(
            "both halve as threads double; ParAlg2 is ≈2x faster than "
            "ParAlg1 on Flickr at every thread count"
        ),
        headers=("algorithm", "threads", "elapsed (work units)"),
        rows=rows,
        series=series,
        log_y=True,
        ylabel="elapsed",
        observed=observed,
        holds=bool(alg2_wins and 1.5 <= factor_1 <= 6.0),
    )
