"""Figure 4 — ordering time: ParBuckets vs ParMax.

Paper (WordNet): ParMax is far below ParBuckets at every thread count
and, unlike ParBuckets, does not degrade as threads are added (it gets
marginally faster), because only the few above-threshold vertices ever
touch a lock.
"""

from __future__ import annotations

from ...graphs.degree import degree_array
from ...order import simulate_order
from ..workloads import Profile
from .common import ExperimentResult

EXPERIMENT_ID = "fig4"


def run(profile: Profile) -> ExperimentResult:
    graph = profile.ordering_graph("WordNet")
    degrees = degree_array(graph)
    rows = []
    series = {"parbuckets": [], "parmax": []}
    pb_t, pm_t = {}, {}
    for T in profile.threads_machine_i:
        pb = simulate_order(
            "parbuckets", degrees, profile.machine_i, num_threads=T
        ).virtual_time
        pm = simulate_order(
            "parmax", degrees, profile.machine_i, num_threads=T
        ).virtual_time
        pb_t[T], pm_t[T] = pb, pm
        rows.append((T, pb, pm, round(pb / pm, 1)))
        series["parbuckets"].append((T, pb))
        series["parmax"].append((T, pm))
    ts = list(profile.threads_machine_i)
    always_below = all(pm_t[t] < pb_t[t] for t in ts)
    pm_growth = pm_t[ts[-1]] / pm_t[ts[0]]
    pb_growth = pb_t[ts[-1]] / pb_t[ts[0]]
    no_blowup = pm_growth <= 1.5 and pm_growth < pb_growth / 3
    observed = (
        f"ParMax below ParBuckets at every T: {always_below}; ParMax "
        f"1→{ts[-1]}-thread growth {pm_growth:.2f}x vs ParBuckets "
        f"{pb_growth:.2f}x (no contention blow-up: {no_blowup}); "
        f"ParMax best at T={min(pm_t, key=pm_t.get)}"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title=f"ordering time, ParBuckets vs ParMax (WordNet @ "
        f"{graph.num_vertices})",
        paper_claim=(
            "ParMax is faster than ParBuckets throughout and gets "
            "(marginally) faster as threads increase instead of degrading"
        ),
        headers=(
            "threads",
            "ParBuckets (work units)",
            "ParMax (work units)",
            "ratio",
        ),
        rows=rows,
        series=series,
        log_y=True,
        ylabel="ordering time",
        observed=observed,
        holds=bool(always_below and no_blowup),
    )
