"""Figure 10 — ParAPSP elapsed time (a) and speedup (b), all datasets.

Paper: every Table 2 dataset shows near-linear or hyper-linear ParAPSP
speedup; sx-superuser runs on Machine-II (32 cores, its result matrix
needs 160 GB), everything else on Machine-I (16 cores).
"""

from __future__ import annotations

from ...analysis.metrics import speedup_curve
from ...graphs.datasets import table2_names
from ..workloads import Profile
from .common import ExperimentResult, apsp_sim

EXPERIMENT_ID = "fig10"


def _sweep_for(dataset: str, profile: Profile):
    if dataset == "sx-superuser":
        return profile.threads_machine_ii, "II"
    return profile.threads_machine_i, "I"


def run(profile: Profile) -> ExperimentResult:
    rows = []
    series = {}
    summary = {}
    for dataset in table2_names():
        threads, machine = _sweep_for(dataset, profile)
        totals = []
        for T in threads:
            _, _, total = apsp_sim(
                dataset, profile.apsp_scale, "parapsp", T, "dynamic", machine
            )
            totals.append(total)
        curve = speedup_curve(threads, totals)
        for T, total in zip(threads, totals):
            rows.append(
                (dataset, machine, T, total, round(curve[T], 2))
            )
        series[dataset] = [(t, curve[t]) for t in threads]
        summary[dataset] = curve[threads[-1]] / threads[-1]
    max_t = max(profile.threads_machine_ii)
    series["linear"] = [(t, float(t)) for t in (1, max_t)]
    # small quick-profile graphs lose efficiency to fixed overheads; at
    # the full profile every dataset sits at ≥0.95 (EXPERIMENTS.md)
    floor = 0.55 if profile.name == "quick" else 0.9
    near_linear = {d: e >= floor for d, e in summary.items()}
    observed = "efficiency at max threads: " + ", ".join(
        f"{d}={e:.2f}" for d, e in summary.items()
    ) + f"; all ≥{floor} (near/hyper-linear): {all(near_linear.values())}"
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="ParAPSP elapsed time and speedup, all Table 2 datasets",
        paper_claim=(
            "almost linear — in some cases hyper-linear — speedup on "
            "every tested dataset, on both machines"
        ),
        headers=(
            "dataset",
            "machine",
            "threads",
            "elapsed (work units)",
            "speedup",
        ),
        rows=rows,
        series=series,
        ylabel="speedup",
        observed=observed,
        holds=all(near_linear.values()),
    )
