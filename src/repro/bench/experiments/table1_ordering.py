"""Table 1 — ordering elapsed time: ParAlg2's selection sort vs ParBuckets.

Paper (WordNet, Machine-I): the selection ordering is flat at ≈46.8 s
regardless of threads (it is sequential); ParBuckets is three orders of
magnitude faster but its time *grows* with the thread count (10 → 166 ms
from 1 to 16 threads) because of lock contention on the low buckets.
"""

from __future__ import annotations

from ...graphs.degree import degree_array
from ...order import simulate_order
from ..workloads import Profile
from .common import ExperimentResult

EXPERIMENT_ID = "table1"


def run(profile: Profile) -> ExperimentResult:
    graph = profile.ordering_graph("WordNet")
    degrees = degree_array(graph)
    sel_time = simulate_order(
        "selection", degrees, profile.machine_i, fast=True
    ).virtual_time
    rows = []
    buckets_times = {}
    for T in profile.threads_machine_i:
        pb = simulate_order(
            "parbuckets", degrees, profile.machine_i, num_threads=T
        )
        buckets_times[T] = pb.virtual_time
        rows.append((T, sel_time, pb.virtual_time, pb.stats["lock_contended"]))
    ts = list(profile.threads_machine_i)
    monotone = all(
        buckets_times[a] <= buckets_times[b] for a, b in zip(ts, ts[1:])
    )
    gap = sel_time / buckets_times[ts[0]]
    observed = (
        f"selection flat at {sel_time:.3g}; ParBuckets "
        f"{buckets_times[ts[0]]:.3g} → {buckets_times[ts[-1]]:.3g} "
        f"(grows with threads: {monotone}); selection/ParBuckets@1 = "
        f"{gap:.0f}x"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title=f"ordering time, selection vs ParBuckets (WordNet @ "
        f"{graph.num_vertices})",
        paper_claim=(
            "selection ≈46.8s flat across threads; ParBuckets orders of "
            "magnitude faster but grows 10→166ms from 1 to 16 threads "
            "(lock contention)"
        ),
        headers=(
            "threads",
            "selection (work units)",
            "ParBuckets (work units)",
            "contended acquisitions",
        ),
        rows=rows,
        series={
            "selection": [(t, sel_time) for t in ts],
            "parbuckets": [(t, buckets_times[t]) for t in ts],
        },
        log_y=True,
        ylabel="ordering time",
        observed=observed,
        holds=bool(monotone and gap > 50),
    )
