"""Shared plumbing for the per-figure experiment modules.

Every experiment returns an :class:`ExperimentResult`: the table rows
it reproduces, optional plot series, the paper's qualitative claim and
the checks that claim implies.  The simulated APSP runs are memoised so
figures that share data (8 and 9, for instance) pay for it once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis.plots import ascii_plot
from ...analysis.tables import format_table
from ...core.runner import solve_apsp
from ...graphs.datasets import load_dataset
from ...simx.machine import MACHINE_I, MACHINE_II, MachineSpec
from ...types import Backend

__all__ = ["ExperimentResult", "apsp_sim", "machine_by_name"]


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    id: str
    title: str
    paper_claim: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: optional named series of (x, y) points for the ASCII plot
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    log_y: bool = False
    xlabel: str = "threads"
    ylabel: str = "time"
    notes: List[str] = field(default_factory=list)
    #: outcome of the shape checks ("holds" / explanation)
    observed: str = ""
    #: did every qualitative shape check pass?
    holds: bool = True

    def render(self) -> str:
        parts = [
            f"== {self.id}: {self.title} ==",
            f"paper claim : {self.paper_claim}",
            f"shape holds : {self.holds}",
        ]
        if self.observed:
            parts.append(f"observed    : {self.observed}")
        parts.append("")
        parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append("")
            parts.append(
                ascii_plot(
                    self.series,
                    log_y=self.log_y,
                    xlabel=self.xlabel,
                    ylabel=self.ylabel,
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def machine_by_name(name: str) -> MachineSpec:
    if name == "I":
        return MACHINE_I
    if name == "II":
        return MACHINE_II
    raise ValueError(f"unknown machine {name!r}")


@lru_cache(maxsize=4096)
def apsp_sim(
    dataset: str,
    scale: Optional[int],
    algorithm: str,
    num_threads: int,
    schedule: str,
    machine: str,
    ordering: Optional[str] = None,
    chunk: int = 1,
    queue: str = "fifo",
) -> Tuple[float, float, float]:
    """Memoised simulated APSP run.

    Returns ``(ordering_time, dijkstra_time, total_time)`` in virtual
    work units.
    """
    graph = load_dataset(dataset, scale=scale)
    result = solve_apsp(
        graph,
        algorithm=algorithm,
        num_threads=num_threads,
        backend=Backend.SIM,
        schedule=schedule,
        ordering=ordering,
        machine=machine_by_name(machine),
        chunk=chunk,
        queue=queue,
    )
    return (
        result.phase_times.ordering,
        result.phase_times.dijkstra,
        result.total_time,
    )
