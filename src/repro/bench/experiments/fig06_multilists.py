"""Figure 6 — ordering time: ParMax vs MultiLists.

Paper: MultiLists beats ParMax; on WordNet it improves with threads up
to 8 and dips slightly at 16 (fork/join overheads on a small graph);
on the much larger soc-Pokec and soc-LiveJournal1 it keeps improving
with more threads (§4.3).
"""

from __future__ import annotations

from ...graphs.degree import degree_array
from ...order import simulate_order
from ..workloads import Profile
from .common import ExperimentResult

EXPERIMENT_ID = "fig6"
DATASETS = ("WordNet", "soc-Pokec", "soc-LiveJournal1")


def run(profile: Profile) -> ExperimentResult:
    rows = []
    series = {}
    ml_times = {}
    pm_times = {}
    sizes = {}
    for dataset in DATASETS:
        graph = profile.ordering_graph(dataset)
        sizes[dataset] = graph.num_vertices
        degrees = degree_array(graph)
        for T in profile.threads_machine_i:
            pm = simulate_order(
                "parmax", degrees, profile.machine_i, num_threads=T
            ).virtual_time
            ml = simulate_order(
                "multilists", degrees, profile.machine_i, num_threads=T
            ).virtual_time
            pm_times[(dataset, T)] = pm
            ml_times[(dataset, T)] = ml
            rows.append((dataset, T, pm, ml, round(pm / ml, 1)))
            series.setdefault(f"multilists:{dataset}", []).append((T, ml))
    ts = list(profile.threads_machine_i)
    wn_better = all(
        ml_times[("WordNet", t)] < pm_times[("WordNet", t)] for t in ts
    )
    big_scales = all(
        ml_times[(d, ts[-1])] < ml_times[(d, ts[0])]
        for d in ("soc-Pokec", "soc-LiveJournal1")
    )
    wn = [ml_times[("WordNet", t)] for t in ts]
    wn_improves_then_flattens = min(wn) < wn[0]
    observed = (
        f"MultiLists < ParMax on WordNet at every T: {wn_better}; "
        f"WordNet curve improves from 1 thread (min at "
        f"T={ts[wn.index(min(wn))]}): {wn_improves_then_flattens}; "
        f"large graphs keep improving at {ts[-1]} threads: {big_scales}"
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="ordering time, ParMax vs MultiLists "
        f"(WordNet @ {sizes['WordNet']}, soc-Pokec @ {sizes['soc-Pokec']}, "
        f"soc-LiveJournal1 @ {sizes['soc-LiveJournal1']})",
        paper_claim=(
            "MultiLists outperforms ParMax; small-graph curve dips after "
            "8 threads, million-vertex graphs keep scaling"
        ),
        headers=(
            "dataset",
            "threads",
            "ParMax (work units)",
            "MultiLists (work units)",
            "ratio",
        ),
        rows=rows,
        series=series,
        log_y=True,
        ylabel="ordering time",
        observed=observed,
        holds=bool(wn_better and wn_improves_then_flattens and big_scales),
    )
