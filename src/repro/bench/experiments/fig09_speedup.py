"""Figure 9 — parallel speedup of ParAlg1, ParAlg2 and ParAPSP.

Paper (WordNet): ParAlg2's speedup is the lowest (its sequential
ordering is an Amdahl bottleneck), ParAlg1 is near linear, and ParAPSP
reaches or exceeds linear speedup ("hyper-linear").
"""

from __future__ import annotations

from ...analysis.metrics import amdahl_fit, speedup_curve
from ..workloads import Profile
from . import fig08_overall
from .common import ExperimentResult

EXPERIMENT_ID = "fig9"


def run(profile: Profile) -> ExperimentResult:
    data = fig08_overall.collect(profile)
    ts = list(profile.threads_machine_i)
    rows = []
    series = {}
    curves = {}
    serial_fraction = {}
    for algo in fig08_overall.ALGOS:
        times = [data[(algo, t)][2] for t in ts]
        curve = speedup_curve(ts, times)
        curves[algo] = curve
        serial_fraction[algo] = amdahl_fit(ts, times)
        for T in ts:
            rows.append((algo, T, round(curve[T], 2)))
        series[algo] = [(t, curve[t]) for t in ts]
    series["linear"] = [(t, float(t)) for t in ts]
    t_max = ts[-1]
    alg2_lowest = curves["paralg2"][t_max] == min(
        c[t_max] for c in curves.values()
    )
    parapsp_best_ordered = curves["parapsp"][t_max] > curves["paralg2"][t_max]
    # at the full profile ParAPSP sits at ≥0.95 efficiency; quick-profile
    # graphs are small enough that fixed overheads shave it
    floor = 0.65 if profile.name == "quick" else 0.85
    parapsp_near_linear = curves["parapsp"][t_max] >= floor * t_max
    observed = (
        f"at {t_max} threads: ParAlg1 {curves['paralg1'][t_max]:.1f}x, "
        f"ParAlg2 {curves['paralg2'][t_max]:.1f}x, ParAPSP "
        f"{curves['parapsp'][t_max]:.1f}x; ParAlg2 lowest: {alg2_lowest}; "
        f"ParAPSP ≥ ~linear: {parapsp_near_linear}; fitted sequential "
        f"fractions: "
        + ", ".join(f"{a}={serial_fraction[a]:.3f}" for a in curves)
    )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="parallel speedup, ParAlg1 / ParAlg2 / ParAPSP (WordNet)",
        paper_claim=(
            "ParAlg2 shows the least speedup (sequential ordering); "
            "ParAPSP removes that overhead and reaches hyper-linear "
            "speedup"
        ),
        headers=("algorithm", "threads", "speedup"),
        rows=rows,
        series=series,
        ylabel="speedup",
        observed=observed,
        holds=bool(alg2_lowest and parapsp_best_ordered and parapsp_near_linear),
    )
