"""Related-work comparison (paper §6).

The paper positions ParAPSP against three families: classic O(n³)
Floyd–Warshall (and its blocked GPU variant, Katz & Kider), repeated
Dijkstra, and partition-and-correct schemes (Tang et al., Abdelghany
et al.).  This experiment runs all of them on one graph and reports

* algorithmic work (operation counts where defined, measured wall time
  otherwise) and
* the coordination cost of the partitioned scheme (boundary-correcting
  rounds) that ParAPSP's shared-memory design avoids.
"""

from __future__ import annotations

import time

from ...baselines import (
    blocked_floyd_warshall,
    floyd_warshall,
    partitioned_apsp,
    repeated_dijkstra,
)
from ...core.runner import solve_apsp
from ..workloads import Profile
from .common import ExperimentResult

__all__ = ["run_related_work"]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run_related_work(profile: Profile) -> ExperimentResult:
    graph = profile.apsp_graph("WordNet")
    n = graph.num_vertices
    rows = []

    _, fw_time = _timed(lambda: floyd_warshall(graph))
    rows.append(("Floyd–Warshall", "O(n^3)", fw_time, None, None))

    _, bfw_time = _timed(lambda: blocked_floyd_warshall(graph, block_size=64))
    rows.append(
        ("blocked Floyd–Warshall (Katz & Kider)", "O(n^3), tiled",
         bfw_time, None, None)
    )

    (rd_dist, rd_counts), rd_time = _timed(lambda: repeated_dijkstra(graph))
    rows.append(
        ("repeated Dijkstra", "O(n (n+m) log n)", rd_time,
         rd_counts.total_work(), None)
    )

    part, part_time = _timed(lambda: partitioned_apsp(graph, num_parts=8))
    rows.append(
        ("partition + correct (Tang et al.)", "decompose/correct",
         part_time, None, part.rounds)
    )

    apsp, apsp_time = _timed(lambda: solve_apsp(graph, algorithm="parapsp"))
    rows.append(
        ("ParAPSP (this paper)", "≈O(n^2.4)", apsp_time,
         apsp.ops.total_work(), None)
    )

    parapsp_wins_fw = apsp_time < fw_time
    no_partitioning = part.rounds > 1
    observed = (
        f"ParAPSP wall time {apsp_time:.3f}s vs Floyd–Warshall "
        f"{fw_time:.3f}s (faster: {parapsp_wins_fw}); the partitioned "
        f"scheme needed {part.rounds} boundary-correcting rounds over "
        f"{part.cut_arcs} cut arcs — the coordination ParAPSP avoids: "
        f"{no_partitioning}"
    )
    return ExperimentResult(
        id="related-work",
        title=f"ParAPSP vs the §6 baseline families (WordNet @ {n})",
        paper_claim=(
            "ParAPSP needs no partitioning/correcting machinery and its "
            "algorithm family is asymptotically below the O(n^3) "
            "approaches"
        ),
        headers=(
            "algorithm",
            "complexity class",
            "wall time (s)",
            "op-count work",
            "correcting rounds",
        ),
        rows=rows,
        observed=observed,
        holds=bool(parapsp_wins_fw and no_partitioning),
        notes=[
            "wall times are single-core Python/numpy and favour "
            "matrix-vectorised algorithms; op counts are the "
            "implementation-independent comparison"
        ],
    )
