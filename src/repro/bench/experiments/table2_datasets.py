"""Table 2 — salient information of the tested real-world graphs,
side by side with the synthetic stand-ins this reproduction uses."""

from __future__ import annotations

from ...graphs.datasets import dataset_info, table2_names
from ...graphs.degree import degree_array
from ..workloads import Profile
from .common import ExperimentResult

EXPERIMENT_ID = "table2"


def run(profile: Profile) -> ExperimentResult:
    rows = []
    for name in table2_names():
        spec = dataset_info(name)
        graph = profile.apsp_graph(name)
        degrees = degree_array(graph)
        rows.append(
            (
                spec.name,
                spec.kind,
                spec.real_vertices,
                spec.real_edges,
                graph.num_vertices,
                graph.num_edges,
                int(degrees.max()),
            )
        )
    return ExperimentResult(
        id=EXPERIMENT_ID,
        title="datasets: published full-scale counts vs synthetic stand-ins",
        paper_claim=(
            "five graphs: ego-Twitter and sx-superuser directed, the rest "
            "undirected; 81k–194k vertices, 0.7M–2.3M edges"
        ),
        headers=(
            "name",
            "type",
            "paper |V|",
            "paper |E|",
            "stand-in |V|",
            "stand-in |E|",
            "stand-in max deg",
        ),
        rows=rows,
        observed="directedness and power-law shape preserved at reduced scale",
        notes=[
            "full-scale graphs are unavailable offline and their APSP "
            "matrices exceed this host's memory (paper: 160 GB for "
            "sx-superuser); see DESIGN.md §1 for the substitution."
        ],
    )
