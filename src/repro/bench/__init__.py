"""Benchmark harness: one experiment per paper table/figure + ablations."""

from .experiments import EXPERIMENTS, ExperimentResult, experiment_ids, run_experiment
from .report import export_all, write_csv, write_series_csv, write_summary
from .runner import run_many, save_report
from .workloads import PROFILES, Profile, get_profile

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "experiment_ids",
    "run_experiment",
    "export_all",
    "write_csv",
    "write_series_csv",
    "write_summary",
    "run_many",
    "save_report",
    "PROFILES",
    "Profile",
    "get_profile",
]
