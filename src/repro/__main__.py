"""``python -m repro`` → the CLI."""

import sys

from .cli import main

sys.exit(main())
