"""First-class solver configuration: :class:`SolverConfig`.

:func:`repro.solve_apsp` accreted ~20 keyword arguments across the
observability, batching, tracing and fault-injection PRs.  Following the
GraphIt/PriorityGraph separation of *algorithm* from *schedule* (Zhang
et al., arXiv:1911.07260), this module groups those knobs into a frozen,
serializable object so a whole run is reproducible from one artifact::

    cfg = SolverConfig(
        algorithm=AlgorithmConfig(name="parapsp", ratio=0.9),
        parallel=ParallelConfig(backend="sim", num_threads=16),
    )
    result = solve_apsp(graph, config=cfg)
    json.dump(cfg.to_dict(), fh)          # …and later:
    solve_apsp(graph, config=SolverConfig.from_dict(json.load(fh)))

Groups mirror the subsystems that own the knobs:

=============== ====================================================
group           knobs
=============== ====================================================
``algorithm``   name, ordering, schedule, queue, ratio, degree_kind,
                use_flags, delta
``parallel``    backend, num_threads, chunk, machine
``batch``       block_size, kernel
``faults``      plan, on_worker_death, timeout, max_retries
``obs``         trace, cost_model
=============== ====================================================

Validation happens once, in each dataclass's ``__post_init__``, and
raises :class:`~repro.exceptions.ConfigError` naming the offending
field (``"algorithm.ratio"``); both the kwargs form and the config form
of ``solve_apsp`` go through this single path.  ``to_dict`` /
``from_dict`` round-trip exactly (asserted by a hypothesis property
test), so configs can live in JSON files and BENCH artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .core.costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .exceptions import ConfigError, FaultPlanError, ReproError
from .faults.plan import FaultPlan
from .graphs.degree import DegreeKind
from .simx.machine import MachineSpec
from .types import Backend, Schedule

__all__ = [
    "AlgorithmConfig",
    "ParallelConfig",
    "BatchConfig",
    "FaultConfig",
    "ObsConfig",
    "SolverConfig",
    "StoreConfig",
    "TelemetryConfig",
    "UpdateConfig",
    "EngineConfig",
    "AdmissionConfig",
    "ServeCostConfig",
    "RoutingConfig",
    "ServeConfig",
    "load_config",
    "load_serve_config",
    "resolve_serve_config",
]

#: queue disciplines of :func:`repro.core.modified_dijkstra_sssp`
QUEUE_DISCIPLINES: Tuple[str, ...] = ("fifo", "heap")

#: recovery policies of :func:`repro.parallel.parallel_for`
DEATH_POLICIES: Tuple[str, ...] = ("retry", "raise")


def _fail(field_name: str, message: str) -> None:
    raise ConfigError(message, field=field_name)


@dataclass(frozen=True)
class AlgorithmConfig:
    """What to solve and in which order (the *algorithm* of the run)."""

    name: str = "parapsp"
    #: ordering procedure override (``None`` = the algorithm's default)
    ordering: Optional[str] = None
    #: sweep schedule override (``None`` = the algorithm's default)
    schedule: Optional[str] = None
    queue: str = "fifo"
    #: Algorithm 3 selection ratio, in (0, 1]
    ratio: float = 1.0
    degree_kind: str = "out"
    use_flags: bool = True
    #: Δ-stepping bucket width: positive number, ``"auto"``, or ``None``
    #: (= auto for solvers that consume it; rejected for the rest by the
    #: cross-group check in :class:`SolverConfig`)
    delta: "float | str | None" = None

    def __post_init__(self) -> None:
        from .core import runner as _runner  # noqa: F401  (registration)
        from .core.registry import canonical_solver_name, get_solver
        from .order import ORDERINGS

        object.__setattr__(self, "name", canonical_solver_name(self.name))
        get_solver(self.name)  # raises ConfigError listing known solvers
        if self.ordering is not None and self.ordering not in ORDERINGS:
            _fail(
                "algorithm.ordering",
                f"unknown ordering {self.ordering!r}; known: "
                f"{', '.join(ORDERINGS)}",
            )
        if self.schedule is not None:
            try:
                normalized = Schedule.coerce(self.schedule).value
            except ReproError as exc:
                _fail("algorithm.schedule", str(exc))
            object.__setattr__(self, "schedule", normalized)
        if self.queue not in QUEUE_DISCIPLINES:
            _fail(
                "algorithm.queue",
                f"unknown queue discipline {self.queue!r}; expected one "
                f"of {QUEUE_DISCIPLINES}",
            )
        if not isinstance(self.ratio, (int, float)) or isinstance(
            self.ratio, bool
        ) or not 0.0 < float(self.ratio) <= 1.0:
            _fail(
                "algorithm.ratio",
                f"ratio must be in (0, 1], got {self.ratio!r}",
            )
        object.__setattr__(self, "ratio", float(self.ratio))
        try:
            kind = DegreeKind.coerce(self.degree_kind).value
        except ReproError as exc:
            _fail("algorithm.degree_kind", str(exc))
        object.__setattr__(self, "degree_kind", kind)
        if not isinstance(self.use_flags, bool):
            _fail(
                "algorithm.use_flags",
                f"use_flags must be a bool, got {self.use_flags!r}",
            )
        d = self.delta
        if isinstance(d, str):
            if d != "auto":
                _fail(
                    "algorithm.delta",
                    f"delta must be a positive number, 'auto' or None; "
                    f"got {d!r}",
                )
        elif d is not None:
            if not isinstance(d, (int, float)) or isinstance(d, bool) \
                    or not float(d) > 0 or float(d) == float("inf"):
                _fail(
                    "algorithm.delta",
                    f"delta must be a positive finite number, 'auto' or "
                    f"None; got {d!r}",
                )
            object.__setattr__(self, "delta", float(d))


@dataclass(frozen=True)
class ParallelConfig:
    """Where and how wide the run executes."""

    backend: str = "serial"
    num_threads: int = 1
    #: dynamic-schedule chunk size (iterations per claim)
    chunk: int = 1
    #: simulated machine for the SIM backend (``None`` = paper default)
    machine: Optional[MachineSpec] = None

    def __post_init__(self) -> None:
        try:
            value = Backend.coerce(self.backend).value
        except ReproError as exc:
            _fail("parallel.backend", str(exc))
        object.__setattr__(self, "backend", value)
        if not isinstance(self.num_threads, int) or isinstance(
            self.num_threads, bool
        ) or self.num_threads < 1:
            _fail(
                "parallel.num_threads",
                f"num_threads must be an int >= 1, got {self.num_threads!r}",
            )
        if not isinstance(self.chunk, int) or isinstance(self.chunk, bool) \
                or self.chunk < 1:
            _fail(
                "parallel.chunk",
                f"chunk must be >= 1, got {self.chunk!r} (a non-positive "
                "chunk would make dynamic workers spin forever)",
            )
        if self.machine is not None and not isinstance(
            self.machine, MachineSpec
        ):
            _fail(
                "parallel.machine",
                f"machine must be a MachineSpec or None, "
                f"got {type(self.machine).__name__}",
            )


@dataclass(frozen=True)
class BatchConfig:
    """Batched-sweep engine knobs (:mod:`repro.core.batch`)."""

    #: ``None`` = unbatched, ``"auto"`` = tuned, int = block of sources
    block_size: "int | str | None" = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        from .core.kernels import kernel_names

        bs = self.block_size
        if isinstance(bs, str):
            if bs != "auto":
                _fail(
                    "batch.block_size",
                    f"block_size must be a positive int, 'auto' or None; "
                    f"got {bs!r}",
                )
        elif bs is not None:
            if not isinstance(bs, int) or isinstance(bs, bool) or bs < 1:
                _fail(
                    "batch.block_size",
                    f"block_size must be a positive int, 'auto' or None; "
                    f"got {bs!r}",
                )
        valid = ("auto",) + kernel_names()
        if self.kernel not in valid:
            _fail(
                "batch.kernel",
                f"unknown kernel {self.kernel!r}; expected one of {valid}",
            )


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection and crash-recovery policy (:mod:`repro.faults`)."""

    plan: Optional[FaultPlan] = None
    on_worker_death: str = "raise"
    #: wall-second bound per process round (``None`` = unbounded)
    timeout: Optional[float] = None
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.plan is not None:
            if not isinstance(self.plan, FaultPlan):
                _fail(
                    "faults.plan",
                    f"plan must be a FaultPlan or None, "
                    f"got {type(self.plan).__name__}",
                )
            try:
                self.plan.validate()
            except FaultPlanError as exc:
                _fail("faults.plan", str(exc))
        if self.on_worker_death not in DEATH_POLICIES:
            _fail(
                "faults.on_worker_death",
                f"on_worker_death must be one of {DEATH_POLICIES}, "
                f"got {self.on_worker_death!r}",
            )
        if self.timeout is not None:
            if not isinstance(self.timeout, (int, float)) or isinstance(
                self.timeout, bool
            ) or not float(self.timeout) > 0:
                _fail(
                    "faults.timeout",
                    f"timeout must be a positive number or None, "
                    f"got {self.timeout!r}",
                )
            object.__setattr__(self, "timeout", float(self.timeout))
        if not isinstance(self.max_retries, int) or isinstance(
            self.max_retries, bool
        ) or self.max_retries < 0:
            _fail(
                "faults.max_retries",
                f"max_retries must be an int >= 0, got {self.max_retries!r}",
            )


@dataclass(frozen=True)
class ObsConfig:
    """Measurement knobs: tracing and the virtual cost model."""

    trace: bool = False
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        if not isinstance(self.trace, bool):
            _fail("obs.trace", f"trace must be a bool, got {self.trace!r}")
        if not isinstance(self.cost_model, DijkstraCostModel):
            _fail(
                "obs.cost_model",
                f"cost_model must be a DijkstraCostModel, "
                f"got {type(self.cost_model).__name__}",
            )


@dataclass(frozen=True)
class StoreConfig:
    """Store-side knobs of :func:`repro.serve.solve_to_store`.

    Deliberately *not* a :class:`SolverConfig` group: it shapes the
    on-disk layout (shard geometry, codec, landmark count) and the
    serving contract (``epsilon``), not the solve itself, so the same
    SolverConfig can feed stores of different codecs.
    """

    #: shard codec name; see :func:`repro.serve.codecs.codec_names`
    codec: str = "raw"
    shard_rows: int = 256
    #: top-degree rows pinned (raw f8) for ALT bounds / degraded mode
    num_landmarks: int = 8
    #: recommended short-circuit gap for the query engine: answer point
    #: queries from landmark bounds alone when ``hi - lo <= epsilon``
    #: (``None`` = disabled, ``0.0`` = only when the bounds coincide)
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        from .serve.codecs import codec_names

        known = codec_names()
        if self.codec not in known:
            _fail(
                "store.codec",
                f"unknown shard codec {self.codec!r}; known: "
                f"{', '.join(known)}",
            )
        if not isinstance(self.shard_rows, int) or isinstance(
            self.shard_rows, bool
        ) or self.shard_rows < 1:
            _fail(
                "store.shard_rows",
                f"shard_rows must be an int >= 1, got {self.shard_rows!r}",
            )
        if not isinstance(self.num_landmarks, int) or isinstance(
            self.num_landmarks, bool
        ) or self.num_landmarks < 0:
            _fail(
                "store.num_landmarks",
                f"num_landmarks must be an int >= 0, "
                f"got {self.num_landmarks!r}",
            )
        eps = self.epsilon
        if eps is not None:
            if not isinstance(eps, (int, float)) or isinstance(eps, bool) \
                    or not float(eps) >= 0 or float(eps) == float("inf"):
                _fail(
                    "store.epsilon",
                    f"epsilon must be a finite number >= 0 or None, "
                    f"got {eps!r}",
                )
            object.__setattr__(self, "epsilon", float(eps))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreConfig":
        if not isinstance(data, Mapping):
            _fail(
                "store", f"must be a mapping, got {type(data).__name__}"
            )
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            _fail("store", f"unknown field(s): {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class TelemetryConfig:
    """Request-telemetry knobs of the serving stack.

    Standalone like :class:`StoreConfig` (it shapes the serving side,
    not the solve): feeds
    :meth:`repro.serve.telemetry.TelemetryCollector.from_config`.
    ``sample`` is the deterministic per-trace JSONL sink admission
    fraction — 1.0 logs every request, smaller values keep a stable
    hash-selected subset so two identical runs still produce identical
    logs.
    """

    #: ring-buffer capacity, in events (the ring answers "what just
    #: happened"; the JSONL sink is the durable log)
    capacity: int = 4096
    #: per-trace sink sampling fraction, in (0, 1]
    sample: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.capacity, int) or isinstance(
            self.capacity, bool
        ) or self.capacity < 1:
            _fail(
                "telemetry.capacity",
                f"capacity must be an int >= 1, got {self.capacity!r}",
            )
        sample = self.sample
        if not isinstance(sample, (int, float)) or isinstance(
            sample, bool
        ) or not 0.0 < float(sample) <= 1.0:
            _fail(
                "telemetry.sample",
                f"sample must be a number in (0, 1], got {sample!r}",
            )
        object.__setattr__(self, "sample", float(sample))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryConfig":
        if not isinstance(data, Mapping):
            _fail(
                "telemetry",
                f"must be a mapping, got {type(data).__name__}",
            )
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            _fail("telemetry", f"unknown field(s): {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class UpdateConfig:
    """Knobs of :func:`repro.serve.apply_edge_updates`.

    Standalone like :class:`StoreConfig`: it shapes the incremental
    update path (dirty-shard screening, pre-flight verification, old
    generation retention), not the solve itself.
    """

    #: certify shards clean via the pinned landmark (ALT) bounds before
    #: running the exact endpoint-SSSP refinement; disabling skips the
    #: certificate pass (the exact refinement alone is still sound)
    prescreen: bool = True
    #: checksum the whole store before touching it — an update must
    #: never be layered on top of silent corruption
    verify_before: bool = True
    #: delete superseded shard/landmark files of older generations after
    #: the manifest swap; off by default so live readers keep working
    prune: bool = False

    def __post_init__(self) -> None:
        for name in ("prescreen", "verify_before", "prune"):
            value = getattr(self, name)
            if not isinstance(value, bool):
                _fail(
                    f"update.{name}",
                    f"{name} must be a bool, got {value!r}",
                )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UpdateConfig":
        if not isinstance(data, Mapping):
            _fail(
                "update", f"must be a mapping, got {type(data).__name__}"
            )
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            _fail("update", f"unknown field(s): {sorted(unknown)}")
        return cls(**data)


#: flat ``solve_apsp`` kwarg name → (group attribute, field name)
KWARG_MAP: Dict[str, Tuple[str, str]] = {
    "algorithm": ("algorithm", "name"),
    "ordering": ("algorithm", "ordering"),
    "schedule": ("algorithm", "schedule"),
    "queue": ("algorithm", "queue"),
    "ratio": ("algorithm", "ratio"),
    "degree_kind": ("algorithm", "degree_kind"),
    "use_flags": ("algorithm", "use_flags"),
    "delta": ("algorithm", "delta"),
    "backend": ("parallel", "backend"),
    "num_threads": ("parallel", "num_threads"),
    "chunk": ("parallel", "chunk"),
    "machine": ("parallel", "machine"),
    "block_size": ("batch", "block_size"),
    "kernel": ("batch", "kernel"),
    "fault_plan": ("faults", "plan"),
    "on_worker_death": ("faults", "on_worker_death"),
    "timeout": ("faults", "timeout"),
    "max_retries": ("faults", "max_retries"),
    "trace": ("obs", "trace"),
    "cost_model": ("obs", "cost_model"),
}

_GROUP_TYPES = {
    "algorithm": AlgorithmConfig,
    "parallel": ParallelConfig,
    "batch": BatchConfig,
    "faults": FaultConfig,
    "obs": ObsConfig,
}


@dataclass(frozen=True)
class SolverConfig:
    """One complete, validated, serializable ``solve_apsp`` setup."""

    algorithm: AlgorithmConfig = field(default_factory=AlgorithmConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        for name, kind in _GROUP_TYPES.items():
            value = getattr(self, name)
            if isinstance(value, Mapping):  # tolerate nested plain dicts
                value = _group_from_dict(name, kind, value)
                object.__setattr__(self, name, value)
            elif not isinstance(value, kind):
                _fail(
                    name,
                    f"must be a {kind.__name__} (or a mapping), "
                    f"got {type(value).__name__}",
                )
        # cross-group checks: the request must fit the chosen solver's
        # capability flags (see repro.core.registry.SolverSpec)
        from .core.registry import get_solver

        spec = get_solver(self.algorithm.name)
        backend = Backend(self.parallel.backend)
        if not spec.parallel and backend in (
            Backend.THREADS,
            Backend.PROCESS,
        ):
            _fail(
                "parallel.backend",
                f"{self.algorithm.name} is a sequential algorithm; use "
                "backend='serial' (or 'sim' for a virtual-time estimate "
                "at 1 thread)",
            )
        if backend is Backend.SIM and not spec.simulatable:
            _fail(
                "parallel.backend",
                f"{self.algorithm.name} has no virtual-time model; it "
                "cannot run on the 'sim' backend",
            )
        if self.algorithm.delta is not None and not spec.uses_delta:
            _fail(
                "algorithm.delta",
                f"{self.algorithm.name} does not consume the Δ bucket "
                "width; delta is only valid for solvers with the "
                "uses_delta capability (e.g. delta-stepping)",
            )
        if self.batch.block_size is not None and not spec.batchable:
            _fail(
                "batch.block_size",
                f"{self.algorithm.name} cannot ride the batched lockstep "
                "kernels; leave block_size unset",
            )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SolverConfig":
        """Build a config from legacy flat ``solve_apsp`` kwargs."""
        groups: Dict[str, Dict[str, Any]] = {g: {} for g in _GROUP_TYPES}
        for key, value in kwargs.items():
            target = KWARG_MAP.get(key)
            if target is None:
                _fail(
                    key,
                    f"unknown solve_apsp keyword {key!r}; known: "
                    f"{', '.join(sorted(KWARG_MAP))}",
                )
            group, fname = target
            groups[group][fname] = value
        return cls(
            **{
                group: kind(**groups[group])
                for group, kind in _GROUP_TYPES.items()
            }
        )

    def with_overrides(self, **kwargs: Any) -> "SolverConfig":
        """Copy with some flat kwargs replaced (the shim's merge step)."""
        patches: Dict[str, Dict[str, Any]] = {}
        for key, value in kwargs.items():
            target = KWARG_MAP.get(key)
            if target is None:
                _fail(key, f"unknown solve_apsp keyword {key!r}")
            group, fname = target
            patches.setdefault(group, {})[fname] = value
        replaced = {
            group: dataclasses.replace(getattr(self, group), **fields)
            for group, fields in patches.items()
        }
        return dataclasses.replace(self, **replaced)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-JSON dict; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {}
        for group in _GROUP_TYPES:
            value = getattr(self, group)
            data = dataclasses.asdict(value)
            if group == "parallel" and value.machine is not None:
                data["machine"] = dataclasses.asdict(value.machine)
            if group == "faults":
                data["plan"] = (
                    value.plan.to_dict() if value.plan is not None else None
                )
            if group == "obs":
                data["cost_model"] = dataclasses.asdict(value.cost_model)
            out[group] = data
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverConfig":
        if not isinstance(data, Mapping):
            _fail("config", f"must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(_GROUP_TYPES)
        if unknown:
            _fail("config", f"unknown group(s): {sorted(unknown)}")
        groups = {}
        for name, kind in _GROUP_TYPES.items():
            raw = data.get(name)
            if raw is None:
                groups[name] = kind()
            else:
                groups[name] = _group_from_dict(name, kind, raw)
        return cls(**groups)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolverConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            _fail("config", f"bad config JSON: {exc}")
        return cls.from_dict(data)

    def describe(self) -> str:
        """One-line human summary (CLI banner)."""
        bits = [
            self.algorithm.name,
            f"backend={self.parallel.backend}",
            f"threads={self.parallel.num_threads}",
        ]
        if self.algorithm.schedule:
            bits.append(f"schedule={self.algorithm.schedule}")
        if self.batch.block_size is not None:
            bits.append(f"block_size={self.batch.block_size}")
        if self.faults.plan is not None:
            bits.append(f"faults={len(self.faults.plan)}")
        return " ".join(bits)


def _group_from_dict(name: str, kind: type, raw: Any):
    """Instantiate one sub-config from a plain mapping."""
    if isinstance(raw, kind):
        return raw
    if not isinstance(raw, Mapping):
        _fail(name, f"must be a mapping, got {type(raw).__name__}")
    valid = {f.name for f in dataclasses.fields(kind)}
    unknown = set(raw) - valid
    if unknown:
        _fail(name, f"unknown field(s): {sorted(unknown)}")
    data = dict(raw)
    if name == "parallel" and isinstance(data.get("machine"), Mapping):
        try:
            data["machine"] = MachineSpec(**data["machine"])
        except (TypeError, ReproError) as exc:
            _fail("parallel.machine", str(exc))
    if name == "faults" and isinstance(data.get("plan"), Mapping):
        try:
            data["plan"] = FaultPlan.from_dict(data["plan"])
        except FaultPlanError as exc:
            _fail("faults.plan", str(exc))
    if name == "obs" and isinstance(data.get("cost_model"), Mapping):
        try:
            data["cost_model"] = DijkstraCostModel(**data["cost_model"])
        except TypeError as exc:
            _fail("obs.cost_model", str(exc))
    return kind(**data)


def load_config(path: str) -> SolverConfig:
    """Read a :class:`SolverConfig` from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        _fail("config", f"cannot read {path!r}: {exc}")
    return SolverConfig.from_json(text)


# ---------------------------------------------------------------------------
# ServeConfig — one validated description of the whole serving stack
# ---------------------------------------------------------------------------


def _check_int(field_name: str, value: Any, minimum: int) -> int:
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        _fail(
            field_name,
            f"must be an int >= {minimum}, got {value!r}",
        )
    return value


def _check_nonneg(field_name: str, value: Any) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not float(value) >= 0 or float(value) == float("inf"):
        _fail(
            field_name,
            f"must be a finite number >= 0, got {value!r}",
        )
    return float(value)


@dataclass(frozen=True)
class EngineConfig:
    """Query-engine and virtual-replay knobs of the serving stack.

    These are the levers that trade memory for latency on the read
    path: the LRU shard-cache size, the virtual server count, and the
    point micro-batching window of :func:`repro.serve.replay_virtual`.
    """

    cache_shards: int = 4
    verify_loads: bool = True
    num_servers: int = 2
    batch_window: float = 1e-3
    batch_max: int = 32

    def __post_init__(self) -> None:
        _check_int("engine.cache_shards", self.cache_shards, 1)
        if not isinstance(self.verify_loads, bool):
            _fail(
                "engine.verify_loads",
                f"verify_loads must be a bool, got {self.verify_loads!r}",
            )
        _check_int("engine.num_servers", self.num_servers, 1)
        window = _check_nonneg("engine.batch_window", self.batch_window)
        object.__setattr__(self, "batch_window", window)
        _check_int("engine.batch_max", self.batch_max, 1)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        return _serve_group_from_dict("engine", cls, data)


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-class in-flight budgets (the admission controller's knobs).

    Mirrors :class:`repro.serve.admission.AdmissionPolicy`, but
    validates with :class:`~repro.exceptions.ConfigError` naming the
    field and serializes with the rest of :class:`ServeConfig`;
    :meth:`to_policy` hands the runtime object to the front end.
    """

    max_point: int = 64
    max_row: int = 4
    max_topk: int = 8

    def __post_init__(self) -> None:
        for name in ("max_point", "max_row", "max_topk"):
            _check_int(f"admission.{name}", getattr(self, name), 1)

    def to_policy(self):
        from .serve.admission import AdmissionPolicy

        return AdmissionPolicy(
            max_point=self.max_point,
            max_row=self.max_row,
            max_topk=self.max_topk,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdmissionConfig":
        return _serve_group_from_dict("admission", cls, data)


@dataclass(frozen=True)
class ServeCostConfig:
    """Virtual service costs of the replay model, in virtual seconds.

    Field-for-field the knobs of
    :class:`repro.serve.replay.ServeCostModel`; :meth:`to_model` builds
    the runtime object.  Kept as a config group so a whole serving
    scenario (costs included) round-trips through one JSON file.
    """

    load_base: float = 2e-4
    load_per_mb: float = 0.064
    hit_cost: float = 2e-5
    point_cost: float = 5e-6
    gather_cost: float = 2e-5
    row_cost: float = 2e-4
    topk_cost: float = 3e-4
    approx_cost: float = 1e-5

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            value = _check_nonneg(f"cost.{f.name}", getattr(self, f.name))
            object.__setattr__(self, f.name, value)

    def to_model(self):
        from .serve.replay import ServeCostModel

        return ServeCostModel(**dataclasses.asdict(self))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeCostConfig":
        return _serve_group_from_dict("cost", cls, data)


@dataclass(frozen=True)
class RoutingConfig:
    """Multi-node shard-routing topology (:mod:`repro.serve.router`).

    ``num_nodes=1`` is the single-node serving stack of PRs 5–9; more
    nodes place shards on a consistent-hash ring with ``replication``
    copies each, ``vnodes`` ring points per node, and a per-node
    in-flight budget of ``node_budget`` requests served by
    ``servers_per_node`` virtual servers.
    """

    num_nodes: int = 1
    replication: int = 1
    vnodes: int = 64
    hash_seed: int = 0
    node_budget: int = 32
    servers_per_node: int = 2

    def __post_init__(self) -> None:
        _check_int("routing.num_nodes", self.num_nodes, 1)
        _check_int("routing.replication", self.replication, 1)
        _check_int("routing.vnodes", self.vnodes, 1)
        if not isinstance(self.hash_seed, int) \
                or isinstance(self.hash_seed, bool) or self.hash_seed < 0:
            _fail(
                "routing.hash_seed",
                f"hash_seed must be an int >= 0, got {self.hash_seed!r}",
            )
        _check_int("routing.node_budget", self.node_budget, 1)
        _check_int("routing.servers_per_node", self.servers_per_node, 1)
        if self.replication > self.num_nodes:
            _fail(
                "routing.replication",
                f"replication {self.replication} exceeds num_nodes "
                f"{self.num_nodes}; a shard cannot have more replicas "
                "than there are nodes to hold them",
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoutingConfig":
        return _serve_group_from_dict("routing", cls, data)


#: flat serving kwarg name → (ServeConfig group, field name); the serve
#: counterpart of :data:`KWARG_MAP`, shared by every serving entry point
SERVE_KWARG_MAP: Dict[str, Tuple[str, str]] = {
    "codec": ("store", "codec"),
    "shard_rows": ("store", "shard_rows"),
    "num_landmarks": ("store", "num_landmarks"),
    "epsilon": ("store", "epsilon"),
    "cache_shards": ("engine", "cache_shards"),
    "verify_loads": ("engine", "verify_loads"),
    "num_servers": ("engine", "num_servers"),
    "batch_window": ("engine", "batch_window"),
    "batch_max": ("engine", "batch_max"),
    "max_point": ("admission", "max_point"),
    "max_row": ("admission", "max_row"),
    "max_topk": ("admission", "max_topk"),
    "load_base": ("cost", "load_base"),
    "load_per_mb": ("cost", "load_per_mb"),
    "hit_cost": ("cost", "hit_cost"),
    "point_cost": ("cost", "point_cost"),
    "gather_cost": ("cost", "gather_cost"),
    "row_cost": ("cost", "row_cost"),
    "topk_cost": ("cost", "topk_cost"),
    "approx_cost": ("cost", "approx_cost"),
    "telemetry_capacity": ("telemetry", "capacity"),
    "telemetry_sample": ("telemetry", "sample"),
    "prescreen": ("update", "prescreen"),
    "verify_before": ("update", "verify_before"),
    "prune": ("update", "prune"),
    "num_nodes": ("routing", "num_nodes"),
    "replication": ("routing", "replication"),
    "vnodes": ("routing", "vnodes"),
    "hash_seed": ("routing", "hash_seed"),
    "node_budget": ("routing", "node_budget"),
    "servers_per_node": ("routing", "servers_per_node"),
}

_SERVE_GROUP_TYPES = {
    "store": StoreConfig,
    "engine": EngineConfig,
    "admission": AdmissionConfig,
    "cost": ServeCostConfig,
    "telemetry": TelemetryConfig,
    "update": UpdateConfig,
    "routing": RoutingConfig,
}


def _serve_group_from_dict(name: str, kind: type, raw: Any):
    """Instantiate one ServeConfig sub-config from a plain mapping."""
    if isinstance(raw, kind):
        return raw
    if not isinstance(raw, Mapping):
        _fail(name, f"must be a mapping, got {type(raw).__name__}")
    valid = {f.name for f in dataclasses.fields(kind)}
    unknown = set(raw) - valid
    if unknown:
        _fail(name, f"unknown field(s): {sorted(unknown)}")
    return kind(**raw)


@dataclass(frozen=True)
class ServeConfig:
    """One complete, validated, serializable serving-stack setup.

    The serving counterpart of :class:`SolverConfig`: the store layout
    (``store``), the query engine and replay model (``engine``,
    ``cost``), admission budgets (``admission``), request telemetry
    (``telemetry``), incremental updates (``update``) and the
    multi-node routing tier (``routing``) in one frozen object.
    :func:`repro.serve.solve_to_store`, :class:`repro.serve.QueryEngine`,
    :class:`repro.serve.ServeFrontend` and the replay entry points all
    accept one through the shared :func:`resolve_serve_config` shim, so
    legacy flat kwargs and the config form take a single validation and
    dispatch path (conflicts warn, explicit kwargs win — the
    ``SolverConfig`` contract).
    """

    store: StoreConfig = field(default_factory=StoreConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    cost: ServeCostConfig = field(default_factory=ServeCostConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    update: UpdateConfig = field(default_factory=UpdateConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)

    def __post_init__(self) -> None:
        for name, kind in _SERVE_GROUP_TYPES.items():
            value = getattr(self, name)
            if isinstance(value, Mapping):  # tolerate nested plain dicts
                value = _serve_group_from_dict(name, kind, value)
                object.__setattr__(self, name, value)
            elif not isinstance(value, kind):
                _fail(
                    name,
                    f"must be a {kind.__name__} (or a mapping), "
                    f"got {type(value).__name__}",
                )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ServeConfig":
        """Build a config from legacy flat serving kwargs."""
        groups: Dict[str, Dict[str, Any]] = {
            g: {} for g in _SERVE_GROUP_TYPES
        }
        for key, value in kwargs.items():
            target = SERVE_KWARG_MAP.get(key)
            if target is None:
                _fail(
                    key,
                    f"unknown serving keyword {key!r}; known: "
                    f"{', '.join(sorted(SERVE_KWARG_MAP))}",
                )
            group, fname = target
            groups[group][fname] = value
        return cls(
            **{
                group: kind(**groups[group])
                for group, kind in _SERVE_GROUP_TYPES.items()
            }
        )

    def with_overrides(self, **kwargs: Any) -> "ServeConfig":
        """Copy with some flat kwargs replaced (the shim's merge step)."""
        patches: Dict[str, Dict[str, Any]] = {}
        for key, value in kwargs.items():
            target = SERVE_KWARG_MAP.get(key)
            if target is None:
                _fail(key, f"unknown serving keyword {key!r}")
            group, fname = target
            patches.setdefault(group, {})[fname] = value
        replaced = {
            group: dataclasses.replace(getattr(self, group), **fields)
            for group, fields in patches.items()
        }
        return dataclasses.replace(self, **replaced)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-JSON dict; inverse of :meth:`from_dict`."""
        return {
            group: dataclasses.asdict(getattr(self, group))
            for group in _SERVE_GROUP_TYPES
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeConfig":
        if not isinstance(data, Mapping):
            _fail(
                "serve_config",
                f"must be a mapping, got {type(data).__name__}",
            )
        unknown = set(data) - set(_SERVE_GROUP_TYPES)
        if unknown:
            _fail("serve_config", f"unknown group(s): {sorted(unknown)}")
        groups = {}
        for name, kind in _SERVE_GROUP_TYPES.items():
            raw = data.get(name)
            if raw is None:
                groups[name] = kind()
            else:
                groups[name] = _serve_group_from_dict(name, kind, raw)
        return cls(**groups)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            _fail("serve_config", f"bad config JSON: {exc}")
        return cls.from_dict(data)

    def describe(self) -> str:
        """One-line human summary (CLI banner)."""
        bits = [
            f"codec={self.store.codec}",
            f"shard_rows={self.store.shard_rows}",
            f"cache_shards={self.engine.cache_shards}",
        ]
        if self.store.epsilon is not None:
            bits.append(f"epsilon={self.store.epsilon:g}")
        if self.routing.num_nodes > 1:
            bits.append(
                f"nodes={self.routing.num_nodes}"
                f"x{self.routing.replication}"
            )
        return " ".join(bits)


def resolve_serve_config(
    config: Any,
    *,
    caller: str,
    overrides: Optional[Mapping[str, Any]] = None,
) -> ServeConfig:
    """The single dispatch shim behind every serving entry point.

    ``config`` may be a :class:`ServeConfig`, a nested mapping in its
    ``to_dict`` layout, or ``None``; ``overrides`` holds the flat
    legacy kwargs the caller's user actually passed.  Passing both a
    config and conflicting kwargs emits a :class:`DeprecationWarning`
    (the explicit kwargs win) — the exact contract of
    :func:`repro.solve_apsp`'s ``SolverConfig`` shim.
    """
    overrides = dict(overrides or {})
    if config is None:
        return ServeConfig.from_kwargs(**overrides)
    if isinstance(config, Mapping):
        config = ServeConfig.from_dict(config)
    elif not isinstance(config, ServeConfig):
        raise ConfigError(
            f"serve_config must be a ServeConfig or a mapping, "
            f"got {type(config).__name__}",
            field="serve_config",
        )
    if not overrides:
        return config
    merged = config.with_overrides(**overrides)
    if merged != config:
        warnings.warn(
            f"{caller} received both serve_config= and conflicting "
            f"keyword argument(s) {sorted(overrides)}; the explicit "
            "kwargs win.  Pass one ServeConfig instead.",
            DeprecationWarning,
            stacklevel=3,
        )
    return merged


def load_serve_config(path: str) -> ServeConfig:
    """Read a :class:`ServeConfig` from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        _fail("serve_config", f"cannot read {path!r}: {exc}")
    return ServeConfig.from_json(text)
