"""Unified execution tracing (ISSUE 3).

One trace model for both timing domains the reproduction produces —
virtual-time simulator events and wall-clock ``repro.obs`` spans —
with Chrome-trace (Perfetto) export, critical-path / contention
analysis, and a ``trace_summary`` artifact section gated in CI.

Typical use::

    from repro.core.runner import solve_apsp
    from repro.trace import trace_from_apsp_result, analyze_trace, write_chrome

    result = solve_apsp(graph, backend="sim", threads=8, trace=True)
    trace = trace_from_apsp_result(result)
    write_chrome("trace.json", trace)       # open in ui.perfetto.dev
    print(analyze_trace(trace).format())    # where did the makespan go?
"""

from .analyze import (
    CriticalPath,
    LockHotspot,
    PhaseAttribution,
    Straggler,
    TraceReport,
    analyze_trace,
)
from .chrome import to_chrome, validate_chrome, write_chrome
from .model import (
    CATEGORIES,
    TRACE_SCHEMA_VERSION,
    FlowArrow,
    PhaseStats,
    Trace,
    TraceSpan,
    trace_from_apsp_result,
    trace_from_phases,
    trace_from_request_events,
    trace_from_sim,
)
from .recorder import TraceRecorder

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "CATEGORIES",
    "Trace",
    "TraceSpan",
    "PhaseStats",
    "FlowArrow",
    "trace_from_sim",
    "trace_from_phases",
    "trace_from_apsp_result",
    "trace_from_request_events",
    "to_chrome",
    "write_chrome",
    "validate_chrome",
    "analyze_trace",
    "TraceReport",
    "PhaseAttribution",
    "CriticalPath",
    "LockHotspot",
    "Straggler",
    "TraceRecorder",
]
