"""The unified execution-trace model.

One schema covers both timing domains the reproduction produces:

* **virtual time** — per-event records from the discrete-event
  simulator (:class:`~repro.simx.trace.SimResult` from ``parfor`` /
  ``locksim``), exact to the work-unit;
* **wall clock** — :func:`repro.obs.span` sections captured by a
  :class:`~repro.trace.recorder.TraceRecorder` while a real backend
  runs.

A :class:`Trace` is a flat list of :class:`TraceSpan` records on
integer *tracks* (one per simulated or OS thread), plus per-phase
aggregate :class:`PhaseStats` (busy / overhead / idle / lock-wait
conservation comes straight from the simulator, so attribution never
has to re-derive it from possibly-incomplete span coverage) and
fork/join :class:`FlowArrow` records for Perfetto's flow rendering.

Every category used here maps 1:1 onto an attribution bucket:

=============  =====================================================
category       meaning
=============  =====================================================
``compute``    useful algorithm work (an iteration, a lock *hold*)
``lock-wait``  blocked on a contended lock (FIFO queue time)
``overhead``   fork/join, dynamic-dispatch claims, lock handoffs
=============  =====================================================

Scheduler idle is the *absence* of spans: ``makespan × tracks`` minus
everything above, reported per phase by the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from ..simx.trace import SimResult

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "CATEGORIES",
    "TraceSpan",
    "PhaseStats",
    "FlowArrow",
    "Trace",
    "trace_from_sim",
    "trace_from_phases",
    "trace_from_apsp_result",
    "trace_from_request_events",
]

#: bump when the span/phase/flow layout changes incompatibly
TRACE_SCHEMA_VERSION = "repro.trace/1"

#: unified span categories (see module docstring)
CATEGORIES = ("compute", "lock-wait", "overhead")

#: simulator event kind → unified category; injected faults are time
#: the application did not choose to spend, i.e. overhead
_KIND_TO_CATEGORY = {
    "iter": "compute",
    "lock-hold": "compute",
    "lock-wait": "lock-wait",
    "overhead": "overhead",
    "fault": "overhead",
}


@dataclass(frozen=True)
class TraceSpan:
    """One timed section on one track of the unified timeline."""

    name: str
    category: str  # one of CATEGORIES
    track: int
    start: float
    duration: float
    phase: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise SimulationError(
                f"unknown span category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )
        if self.duration < 0:
            raise SimulationError(
                f"span {self.name!r} has negative duration {self.duration}"
            )
        if self.track < 0:
            raise SimulationError(
                f"span {self.name!r} has negative track {self.track}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PhaseStats:
    """Exact aggregate accounting of one phase (from the simulator).

    Conservation: ``busy + overhead + idle == makespan × tracks`` (all
    totals are summed over tracks).  ``lock_wait`` is the portion of
    ``overhead`` spent queued on contended locks.
    """

    name: str
    start: float
    makespan: float
    tracks: int
    busy: float
    overhead: float
    idle: float
    lock_wait: float = 0.0
    lock_acquisitions: int = 0
    lock_contended: int = 0
    schedule: str = ""

    @property
    def end(self) -> float:
        return self.start + self.makespan

    @property
    def thread_time(self) -> float:
        return self.makespan * self.tracks


@dataclass(frozen=True)
class FlowArrow:
    """A causal arrow between two timeline points (fork or join)."""

    flow_id: int
    name: str  # "fork" | "join"
    src_track: int
    src_time: float
    dst_track: int
    dst_time: float


@dataclass
class Trace:
    """A complete unified trace: spans + phases + flows + provenance."""

    clock: str  # "virtual" | "wall"
    num_tracks: int
    makespan: float
    spans: List[TraceSpan] = field(default_factory=list)
    phases: List[PhaseStats] = field(default_factory=list)
    flows: List[FlowArrow] = field(default_factory=list)
    track_names: Dict[int, str] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)
    schema: str = TRACE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.clock not in ("virtual", "wall"):
            raise SimulationError(
                f"trace clock must be 'virtual' or 'wall', got {self.clock!r}"
            )
        if self.num_tracks < 1:
            raise SimulationError("trace needs at least one track")

    def track_label(self, track: int) -> str:
        return self.track_names.get(track, f"thread {track}")

    def spans_in_phase(self, phase: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.phase == phase]


def _sim_phase_stats(
    name: str, result: SimResult, offset: float
) -> PhaseStats:
    lock_wait = sum(
        e.duration for e in result.events if e.kind == "lock-wait"
    )
    return PhaseStats(
        name=name,
        start=offset,
        makespan=float(result.makespan),
        tracks=result.num_threads,
        busy=result.total_busy,
        overhead=result.total_overhead,
        idle=float(result.idle.sum()),
        lock_wait=float(lock_wait),
        lock_acquisitions=result.total_acquisitions,
        lock_contended=result.contended_acquisitions,
        schedule=result.meta.get("schedule", ""),
    )


def _sim_spans(
    name: str, result: SimResult, offset: float
) -> List[TraceSpan]:
    spans = []
    for e in result.events:
        spans.append(
            TraceSpan(
                name=e.name(),
                category=_KIND_TO_CATEGORY[e.kind],
                track=e.thread,
                start=e.start + offset,
                duration=e.duration,
                phase=name,
            )
        )
    return spans


def _fork_join_flows(
    phase: PhaseStats,
    spans: Sequence[TraceSpan],
    next_id: int,
) -> Tuple[List[FlowArrow], int]:
    """Fork arrows from the region open to each track's first span, and
    join arrows from each track's last span back to the region close.

    Single-track phases produce no arrows (nothing forked).
    """
    if phase.tracks <= 1:
        return [], next_id
    first: Dict[int, TraceSpan] = {}
    last: Dict[int, TraceSpan] = {}
    for s in spans:
        if s.track not in first or s.start < first[s.track].start:
            first[s.track] = s
        if s.track not in last or s.end > last[s.track].end:
            last[s.track] = s
    flows: List[FlowArrow] = []
    for track in sorted(first):
        flows.append(
            FlowArrow(
                flow_id=next_id,
                name="fork",
                src_track=0,
                src_time=phase.start,
                dst_track=track,
                dst_time=first[track].start,
            )
        )
        next_id += 1
    for track in sorted(last):
        flows.append(
            FlowArrow(
                flow_id=next_id,
                name="join",
                src_track=track,
                src_time=last[track].end,
                dst_track=0,
                dst_time=phase.end,
            )
        )
        next_id += 1
    return flows, next_id


def trace_from_phases(
    phases: Iterable[Tuple[str, SimResult]],
    *,
    meta: Optional[Mapping[str, str]] = None,
) -> Trace:
    """Concatenate named simulated phases into one unified trace.

    Phases are laid out back to back on the virtual clock (phase k+1
    starts at the cumulative makespan of phases 0..k), matching how
    :meth:`SimResult.merge_sequential` composes timelines.
    """
    phase_list = list(phases)
    if not phase_list:
        raise SimulationError("trace needs at least one phase")
    spans: List[TraceSpan] = []
    stats: List[PhaseStats] = []
    flows: List[FlowArrow] = []
    offset = 0.0
    width = 1
    next_flow = 0
    merged_meta: Dict[str, str] = dict(meta or {})
    for name, result in phase_list:
        ps = _sim_phase_stats(name, result, offset)
        phase_spans = _sim_spans(name, result, offset)
        phase_flows, next_flow = _fork_join_flows(ps, phase_spans, next_flow)
        stats.append(ps)
        spans.extend(phase_spans)
        flows.extend(phase_flows)
        for key, value in result.meta.items():
            merged_meta.setdefault(f"{name}.{key}", value)
        offset += result.makespan
        width = max(width, result.num_threads)
    return Trace(
        clock="virtual",
        num_tracks=width,
        makespan=offset,
        spans=spans,
        phases=stats,
        flows=flows,
        track_names={t: f"sim thread {t}" for t in range(width)},
        meta=merged_meta,
    )


def trace_from_sim(
    result: SimResult,
    *,
    phase: str = "region",
    meta: Optional[Mapping[str, str]] = None,
) -> Trace:
    """Wrap a single traced :class:`SimResult` as a unified trace."""
    return trace_from_phases([(phase, result)], meta=meta)


def trace_from_apsp_result(result) -> Trace:
    """Unified trace of one SIM-backend :func:`solve_apsp` run.

    Requires the run to have been made with ``trace=True`` (otherwise
    there are no events to lay out).  The ordering phase is included
    only when the algorithm has one.
    """
    if result.backend != "sim":
        raise SimulationError(
            f"unified traces come from the SIM backend, got "
            f"{result.backend!r}; use TraceRecorder for wall-clock runs"
        )
    if result.sim_dijkstra is None:
        raise SimulationError("result carries no simulated sweep")
    if not result.sim_dijkstra.events and result.sim_dijkstra.total_busy > 0:
        raise SimulationError(
            "no trace events — run solve_apsp(..., trace=True)"
        )
    phases = []
    if result.sim_ordering is not None and result.sim_ordering.makespan > 0:
        phases.append(("ordering", result.sim_ordering))
    phases.append(("sweep", result.sim_dijkstra))
    meta = {
        "algorithm": result.algorithm,
        "schedule": result.schedule or "",
        "ordering": result.ordering_method or "",
        "threads": str(result.num_threads),
    }
    return trace_from_phases(phases, meta=meta)


def trace_from_request_events(
    records: Iterable[Mapping[str, object]],
    *,
    trace_id: str = "",
    clock: str = "virtual",
) -> Trace:
    """Unified single-track trace of one serving request's lifecycle.

    ``records`` are plain mappings with ``name``, ``category``,
    ``start`` and ``duration`` keys (the shape
    :mod:`repro.serve.telemetry` produces); timestamps are rebased so
    the earliest record starts at zero, which keeps exported Chrome
    traces openable regardless of where on the virtual (or wall) clock
    the request ran.
    """
    record_list = list(records)
    if not record_list:
        raise SimulationError(
            "request trace needs at least one event"
            + (f" (trace_id={trace_id!r})" if trace_id else "")
        )
    base = min(float(r["start"]) for r in record_list)
    phase_name = "request"
    spans = [
        TraceSpan(
            name=str(r["name"]),
            category=str(r["category"]),
            track=0,
            start=float(r["start"]) - base,
            duration=float(r["duration"]),
            phase=phase_name,
        )
        for r in record_list
    ]
    makespan = max(s.end for s in spans)
    busy = sum(s.duration for s in spans if s.category == "compute")
    lock_wait = sum(
        s.duration for s in spans if s.category == "lock-wait"
    )
    overhead = sum(
        s.duration for s in spans if s.category != "compute"
    )
    stats = PhaseStats(
        name=phase_name,
        start=0.0,
        makespan=makespan,
        tracks=1,
        busy=busy,
        overhead=overhead,
        idle=max(makespan - busy - overhead, 0.0),
        lock_wait=lock_wait,
    )
    return Trace(
        clock=clock,
        num_tracks=1,
        makespan=makespan,
        spans=spans,
        phases=[stats],
        track_names={0: trace_id or phase_name},
        meta={"trace_id": trace_id} if trace_id else {},
    )
