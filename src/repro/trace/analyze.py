"""Trace analysis: critical path, makespan attribution, hotspots.

Where did the makespan go?  Three complementary answers:

* **Attribution** — per phase, split ``makespan × tracks`` thread-time
  into compute / lock-wait / other overhead (fork-join + dispatch +
  handoff) / scheduler idle, using the simulator's exact per-thread
  accounting (:class:`~repro.trace.model.PhaseStats`), not span
  coverage, so the fractions always sum to 1.
* **Critical path** — the longest chain of causally-ordered spans
  through the event DAG: within a track, consecutive spans; across
  tracks, whichever span's completion released the current one (the
  latest span ending at or before its start).  Its composition says
  what to optimise: a compute-dominated path means the algorithm is the
  limit, a lock-wait-dominated one means contention is.
* **Hotspots & stragglers** — top-k locks ranked by total queue time
  (with the procedure's own lock names, never anonymous ids), and
  per-phase straggler tracks ranked by how long everyone else idled at
  the join waiting for them.

:meth:`TraceReport.summary` flattens the whole report into the numeric
``trace_summary`` section of ``BENCH_*.json`` artifacts, which
:mod:`repro.obs.regress` gates in CI.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .model import Trace, TraceSpan

__all__ = [
    "PhaseAttribution",
    "CriticalPath",
    "LockHotspot",
    "Straggler",
    "TraceReport",
    "analyze_trace",
]

#: float comparison slack on the virtual clock (work units) / wall (s)
_EPS = 1e-9


@dataclass(frozen=True)
class PhaseAttribution:
    """Thread-time split of one phase; fractions sum to 1."""

    name: str
    makespan: float
    tracks: int
    compute: float
    lock_wait: float
    overhead: float  # non-lock-wait overhead: fork/join, dispatch, handoff
    idle: float
    schedule: str = ""

    @property
    def thread_time(self) -> float:
        return self.makespan * self.tracks

    def fraction(self, part: float) -> float:
        return part / self.thread_time if self.thread_time else 0.0

    @property
    def compute_fraction(self) -> float:
        return self.fraction(self.compute)

    @property
    def lock_wait_fraction(self) -> float:
        return self.fraction(self.lock_wait)

    @property
    def overhead_fraction(self) -> float:
        return self.fraction(self.overhead)

    @property
    def idle_fraction(self) -> float:
        return self.fraction(self.idle)


@dataclass(frozen=True)
class CriticalPath:
    """The longest causal chain through the trace, decomposed."""

    length: float
    compute: float
    lock_wait: float
    overhead: float
    gap: float  # time on the path not covered by any span (idle hops)
    span_count: int
    spans: Tuple[TraceSpan, ...] = ()

    def fraction(self, part: float) -> float:
        return part / self.length if self.length else 0.0


@dataclass(frozen=True)
class LockHotspot:
    """Aggregate queue time behind one named lock."""

    name: str
    wait_total: float
    waits: int
    max_wait: float


@dataclass(frozen=True)
class Straggler:
    """A track whose late finish made the rest of a phase wait."""

    phase: str
    track: int
    finish: float  # offset from phase start
    caused_idle: float  # Σ over other tracks of (finish - their finish)


@dataclass
class TraceReport:
    """Everything :func:`analyze_trace` derives from one trace."""

    clock: str
    makespan: float
    tracks: int
    phases: List[PhaseAttribution]
    critical_path: CriticalPath
    lock_hotspots: List[LockHotspot]
    stragglers: List[Straggler]
    meta: Dict[str, str] = field(default_factory=dict)

    # -- totals ----------------------------------------------------------
    @property
    def thread_time(self) -> float:
        return sum(p.thread_time for p in self.phases)

    def _total(self, attr: str) -> float:
        return sum(getattr(p, attr) for p in self.phases)

    def _total_fraction(self, attr: str) -> float:
        tt = self.thread_time
        return self._total(attr) / tt if tt else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat numeric mapping — the artifact ``trace_summary`` section.

        Keys are stable and sorted; the gated ones are the
        ``*_fraction`` families (see :mod:`repro.obs.regress`).
        """
        out: Dict[str, float] = {
            "trace.makespan": float(self.makespan),
            "trace.tracks": float(self.tracks),
            "trace.compute_fraction": self._total_fraction("compute"),
            "trace.lock_wait_fraction": self._total_fraction("lock_wait"),
            "trace.overhead_fraction": self._total_fraction("overhead"),
            "trace.idle_fraction": self._total_fraction("idle"),
        }
        for p in self.phases:
            pre = f"trace.phase.{p.name}"
            out[f"{pre}.makespan"] = float(p.makespan)
            out[f"{pre}.compute_fraction"] = p.compute_fraction
            out[f"{pre}.lock_wait_fraction"] = p.lock_wait_fraction
            out[f"{pre}.overhead_fraction"] = p.overhead_fraction
            out[f"{pre}.idle_fraction"] = p.idle_fraction
        cp = self.critical_path
        out["trace.critical_path.length"] = float(cp.length)
        out["trace.critical_path.span_count"] = float(cp.span_count)
        out["trace.critical_path.compute_fraction"] = cp.fraction(cp.compute)
        out["trace.critical_path.lock_wait_fraction"] = cp.fraction(
            cp.lock_wait
        )
        out["trace.critical_path.overhead_fraction"] = cp.fraction(
            cp.overhead
        )
        if self.lock_hotspots:
            top = self.lock_hotspots[0]
            out["trace.lock.top_wait_total"] = float(top.wait_total)
            out["trace.lock.hotspot_count"] = float(len(self.lock_hotspots))
        return dict(sorted(out.items()))

    def format(self) -> str:
        """Human-readable report for ``repro-apsp trace --report``."""
        lines = [
            f"trace ({self.clock} clock): makespan {self.makespan:g}, "
            f"{self.tracks} track(s)",
        ]
        for p in self.phases:
            sched = f", schedule={p.schedule}" if p.schedule else ""
            lines.append(
                f"  phase {p.name:<10s} makespan {p.makespan:>12g}  "
                f"[{p.tracks} track(s){sched}]"
            )
            lines.append(
                "    compute {:6.1%}  lock-wait {:6.1%}  overhead {:6.1%}"
                "  idle {:6.1%}".format(
                    p.compute_fraction,
                    p.lock_wait_fraction,
                    p.overhead_fraction,
                    p.idle_fraction,
                )
            )
        cp = self.critical_path
        lines.append(
            f"  critical path: {cp.length:g} over {cp.span_count} span(s) "
            "— compute {:.1%}, lock-wait {:.1%}, overhead {:.1%}, "
            "gaps {:.1%}".format(
                cp.fraction(cp.compute),
                cp.fraction(cp.lock_wait),
                cp.fraction(cp.overhead),
                cp.fraction(cp.gap),
            )
        )
        if self.lock_hotspots:
            lines.append("  lock hotspots (by total queue time):")
            for h in self.lock_hotspots:
                lines.append(
                    f"    {h.name:<24s} wait {h.wait_total:>12g}  "
                    f"({h.waits} contended acquire(s), max {h.max_wait:g})"
                )
        if self.stragglers:
            lines.append("  stragglers (idle caused at the join):")
            for s in self.stragglers:
                lines.append(
                    f"    {s.phase}: track {s.track} finished at "
                    f"+{s.finish:g}, others idled {s.caused_idle:g}"
                )
        return "\n".join(lines)


def _critical_path(trace: Trace) -> CriticalPath:
    spans = sorted(trace.spans, key=lambda s: (s.end, s.start, s.track))
    if not spans:
        return CriticalPath(
            length=trace.makespan, compute=0.0, lock_wait=0.0,
            overhead=0.0, gap=trace.makespan, span_count=0,
        )
    # walk back from the last-ending span; the predecessor of a span is
    # the latest-ending span that completed by its start — its own
    # track's previous span when it ran back to back, or the cross-track
    # span whose completion (lock release, fork) unblocked it
    ends = [s.end for s in spans]
    path: List[TraceSpan] = [spans[-1]]
    cur = spans[-1]
    seen = {id(cur)}
    for _ in range(len(spans)):
        k = bisect.bisect_right(ends, cur.start + _EPS)
        # never pick the current span itself (zero-duration spans end
        # exactly at their own start)
        while k > 0 and id(spans[k - 1]) in seen:
            k -= 1
        if k == 0:
            break
        nxt = spans[k - 1]
        # prefer staying on the same track among (near-)tied ends so the
        # path reads as a thread's story where possible
        best_end = nxt.end
        j = k - 1
        while j >= 0 and spans[j].end >= best_end - _EPS:
            if spans[j].track == cur.track and id(spans[j]) not in seen:
                nxt = spans[j]
                break
            j -= 1
        path.append(nxt)
        seen.add(id(nxt))
        cur = nxt
    path.reverse()
    compute = sum(s.duration for s in path if s.category == "compute")
    lock_wait = sum(s.duration for s in path if s.category == "lock-wait")
    overhead = sum(s.duration for s in path if s.category == "overhead")
    length = path[-1].end - path[0].start
    gap = max(0.0, length - compute - lock_wait - overhead)
    return CriticalPath(
        length=length,
        compute=compute,
        lock_wait=lock_wait,
        overhead=overhead,
        gap=gap,
        span_count=len(path),
        spans=tuple(path),
    )


def _lock_hotspots(trace: Trace, top_k: int) -> List[LockHotspot]:
    agg: Dict[str, List[float]] = {}
    for s in trace.spans:
        if s.category != "lock-wait":
            continue
        entry = agg.setdefault(s.name, [0.0, 0.0, 0.0])
        entry[0] += s.duration
        entry[1] += 1
        entry[2] = max(entry[2], s.duration)
    hotspots = [
        LockHotspot(name=name, wait_total=total, waits=int(count),
                    max_wait=peak)
        for name, (total, count, peak) in agg.items()
    ]
    hotspots.sort(key=lambda h: (-h.wait_total, h.name))
    return hotspots[:top_k]


def _stragglers(trace: Trace, top_k: int) -> List[Straggler]:
    out: List[Straggler] = []
    for phase in trace.phases:
        if phase.tracks <= 1:
            continue
        finishes: Dict[int, float] = {}
        for s in trace.spans_in_phase(phase.name):
            finishes[s.track] = max(finishes.get(s.track, 0.0), s.end)
        if len(finishes) <= 1:
            continue
        last_track = max(finishes, key=lambda t: (finishes[t], -t))
        last = finishes[last_track]
        caused = sum(last - f for t, f in finishes.items()
                     if t != last_track)
        out.append(
            Straggler(
                phase=phase.name,
                track=last_track,
                finish=last - phase.start,
                caused_idle=caused,
            )
        )
    out.sort(key=lambda s: -s.caused_idle)
    return out[:top_k]


def analyze_trace(trace: Trace, *, top_k: int = 5) -> TraceReport:
    """Compute the full report for one unified trace."""
    phases: List[PhaseAttribution] = []
    for ps in trace.phases:
        other_overhead = max(0.0, ps.overhead - ps.lock_wait)
        phases.append(
            PhaseAttribution(
                name=ps.name,
                makespan=ps.makespan,
                tracks=ps.tracks,
                compute=ps.busy,
                lock_wait=ps.lock_wait,
                overhead=other_overhead,
                idle=ps.idle,
                schedule=ps.schedule,
            )
        )
    return TraceReport(
        clock=trace.clock,
        makespan=trace.makespan,
        tracks=trace.num_tracks,
        phases=phases,
        critical_path=_critical_path(trace),
        lock_hotspots=_lock_hotspots(trace, top_k),
        stragglers=_stragglers(trace, top_k),
        meta=dict(trace.meta),
    )
