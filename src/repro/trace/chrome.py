"""Chrome Trace Event Format export (Perfetto / ``chrome://tracing``).

The JSON object format: ``{"traceEvents": [...], ...}`` with

* ``M`` metadata events naming the process and one thread per track;
* ``X`` complete events, one per :class:`~repro.trace.model.TraceSpan`
  (``ts``/``dur`` in microseconds — virtual work units map 1:1 onto
  microtick microseconds, wall-clock seconds are scaled by 1e6);
* ``s``/``f`` flow events for the fork/join arrows, so Perfetto draws
  the parallel-region structure across tracks.

:func:`validate_chrome` is the schema check the test suite (and CI)
runs against every emitted file; it enforces what the Perfetto loader
actually needs, so a file that passes here loads there.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping

from .model import Trace

__all__ = ["to_chrome", "write_chrome", "validate_chrome"]

#: one virtual work unit rendered as one microsecond in the viewer
_VIRTUAL_SCALE = 1.0
#: wall clock is recorded in seconds; Chrome wants microseconds
_WALL_SCALE = 1e6

_PID = 1


def _scale(trace: Trace) -> float:
    return _VIRTUAL_SCALE if trace.clock == "virtual" else _WALL_SCALE


def to_chrome(trace: Trace) -> Dict[str, Any]:
    """Convert a unified trace to a Chrome-trace JSON object."""
    scale = _scale(trace)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": f"repro-apsp ({trace.clock} time)"},
        }
    ]
    for track in range(trace.num_tracks):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": track,
                "args": {"name": trace.track_label(track)},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": track,
                "args": {"sort_index": track},
            }
        )
    for span in trace.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": _PID,
                "tid": span.track,
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "args": {"phase": span.phase, "category": span.category},
            }
        )
    # phase extents on their own track row (tid = num_tracks) so the
    # ordering/sweep structure reads at a glance above the thread lanes
    for phase in trace.phases:
        events.append(
            {
                "name": f"phase:{phase.name}",
                "cat": "phase",
                "ph": "X",
                "pid": _PID,
                "tid": trace.num_tracks,
                "ts": phase.start * scale,
                "dur": phase.makespan * scale,
                "args": {
                    "tracks": phase.tracks,
                    "schedule": phase.schedule,
                    "lock_acquisitions": phase.lock_acquisitions,
                    "lock_contended": phase.lock_contended,
                },
            }
        )
    if trace.phases:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": trace.num_tracks,
                "args": {"name": "phases"},
            }
        )
    for flow in trace.flows:
        common = {"cat": "flow", "name": flow.name, "id": flow.flow_id,
                  "pid": _PID}
        events.append(
            {
                **common,
                "ph": "s",
                "tid": flow.src_track,
                "ts": flow.src_time * scale,
            }
        )
        events.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "tid": flow.dst_track,
                # a flow finish must not sit before its start tick
                "ts": max(flow.dst_time, flow.src_time) * scale,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": trace.schema,
            "clock": trace.clock,
            "makespan": trace.makespan,
            **trace.meta,
        },
    }


def write_chrome(path: str, trace: Trace) -> str:
    """Validate and write the Chrome-trace JSON; returns the path."""
    obj = to_chrome(trace)
    problems = validate_chrome(obj)
    if problems:
        raise ValueError(
            "refusing to write invalid chrome trace: " + "; ".join(problems)
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return path


def validate_chrome(obj: Any) -> List[str]:
    """Schema check for the JSON object format; [] means loadable."""
    problems: List[str] = []
    if not isinstance(obj, Mapping):
        return ["chrome trace must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    open_flows: Dict[Any, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            problems.append(f"traceEvents[{i}] must be an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "s", "f", "B", "E", "i", "C"):
            problems.append(f"traceEvents[{i}] has unknown ph {ph!r}")
            continue
        if "pid" not in ev or "tid" not in ev:
            problems.append(f"traceEvents[{i}] missing pid/tid")
        if ph == "X":
            for key in ("name", "ts", "dur"):
                if key not in ev:
                    problems.append(f"traceEvents[{i}] (X) missing {key!r}")
            ts, dur = ev.get("ts"), ev.get("dur")
            if isinstance(dur, (int, float)) and not isinstance(dur, bool) \
                    and dur < 0:
                problems.append(f"traceEvents[{i}] has negative dur")
            for key, value in (("ts", ts), ("dur", dur)):
                if value is not None and (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float))
                ):
                    problems.append(
                        f"traceEvents[{i}].{key} must be numeric"
                    )
        elif ph in ("s", "f"):
            if "id" not in ev or "ts" not in ev:
                problems.append(f"traceEvents[{i}] (flow) missing id/ts")
            elif ph == "s":
                open_flows[ev["id"]] = open_flows.get(ev["id"], 0) + 1
            else:
                if open_flows.get(ev["id"], 0) <= 0:
                    problems.append(
                        f"traceEvents[{i}] flow finish id={ev['id']!r} "
                        "has no matching start"
                    )
                else:
                    open_flows[ev["id"]] -= 1
    for flow_id, still_open in open_flows.items():
        if still_open:
            problems.append(f"flow id={flow_id!r} started but never finished")
    if len(problems) > 20:
        problems = problems[:20] + ["... (truncated)"]
    return problems
