"""Wall-clock trace recording through the ``repro.obs`` span hook.

A :class:`TraceRecorder` *is* a :class:`~repro.obs.metrics.MetricsRegistry`
— install it with :func:`repro.obs.use_registry` and every
:func:`repro.obs.span` section the instrumented code already emits
(``apsp.ordering``, ``apsp.dijkstra``, ``parallel.worker``,
``sweep.source``, ...) is additionally captured with the OS thread it
ran on.  Because the hook is the existing no-op-by-default one, hot
paths pay nothing unless a recorder is installed.

:meth:`TraceRecorder.to_trace` lays the captured sections out as a
unified :class:`~repro.trace.model.Trace` on the wall clock, one track
per OS thread in first-seen order, normalised so the earliest span
starts at t=0.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Tuple

from ..obs.metrics import MetricsRegistry, SpanRecord
from .model import PhaseStats, Trace, TraceSpan

__all__ = ["TraceRecorder"]

#: span paths whose first segment matches get folded into a named phase
_PHASE_ROOTS = ("apsp.ordering", "apsp.dijkstra", "apsp.shard", "serve")


class TraceRecorder(MetricsRegistry):
    """A metrics registry that also captures spans as timeline records."""

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        super().__init__(clock)
        self._timeline: List[Tuple[SpanRecord, int, str]] = []

    def _record_span(self, record: SpanRecord) -> None:
        super()._record_span(record)
        thread = threading.current_thread()
        with self._lock:
            self._timeline.append((record, thread.ident or 0, thread.name))

    @property
    def timeline(self) -> List[Tuple[SpanRecord, int, str]]:
        with self._lock:
            return list(self._timeline)

    def to_trace(self) -> Trace:
        """The captured spans as a wall-clock unified trace."""
        timeline = self.timeline
        if not timeline:
            raise ValueError(
                "no spans recorded — install the recorder with "
                "use_registry() around the measured code"
            )
        t0 = min(rec.start for rec, _, _ in timeline)
        horizon = max(rec.start + rec.duration for rec, _, _ in timeline)
        tracks: Dict[int, int] = {}
        names: Dict[int, str] = {}
        spans: List[TraceSpan] = []
        for rec, ident, thread_name in timeline:
            track = tracks.setdefault(ident, len(tracks))
            names.setdefault(track, thread_name)
            spans.append(
                TraceSpan(
                    name=rec.path,
                    category="compute",
                    track=track,
                    start=rec.start - t0,
                    duration=rec.duration,
                    phase=_phase_of(rec.path),
                )
            )
        spans.sort(key=lambda s: (s.start, s.track))
        makespan = horizon - t0
        return Trace(
            clock="wall",
            num_tracks=len(tracks),
            makespan=makespan,
            spans=spans,
            phases=_wall_phases(spans, len(tracks)),
            track_names=names,
            meta={"recorder": "repro.trace.TraceRecorder"},
        )


def _phase_of(path: str) -> str:
    for root in _PHASE_ROOTS:
        if path == root or path.startswith(root + "."):
            return root.rsplit(".", 1)[-1]
    return ""


def _wall_phases(spans: List[TraceSpan], tracks: int) -> List[PhaseStats]:
    """Phase extents from the top-level ``apsp.*`` spans.

    Wall phases only know span coverage (there is no simulator to hand
    us exact overhead/idle), so ``busy`` is the leaf compute time inside
    the phase window and the remainder of ``makespan × tracks`` is
    reported as idle — an upper bound that still exposes imbalance.
    """
    out: List[PhaseStats] = []
    for phase in ("ordering", "dijkstra"):
        inside = [s for s in spans if s.phase == phase]
        if not inside:
            continue
        start = min(s.start for s in inside)
        end = max(s.end for s in inside)
        # leaf spans only: a nested span's time is already inside its
        # parent, so count spans with no child starting within them on
        # the same track... wall spans nest by path depth instead
        max_depth = max(s.name.count(".") for s in inside)
        leaves = [s for s in inside if s.name.count(".") == max_depth]
        busy = sum(s.duration for s in leaves)
        makespan = end - start
        idle = max(0.0, makespan * tracks - busy)
        out.append(
            PhaseStats(
                name=phase,
                start=start,
                makespan=makespan,
                tracks=tracks,
                busy=busy,
                overhead=0.0,
                idle=idle,
            )
        )
    return out
