"""repro — ParAPSP: Efficient Parallel All-Pairs Shortest Paths for
Complex Graph Analysis (Kim, Choi & Bae, ICPP'18 Companion).

Reproduction of the paper's full system: Peng et al.'s modified-Dijkstra
APSP family (basic, optimized), its shared-memory parallelisations
(ParAlg1, ParAlg2, **ParAPSP**), the parallel degree-ordering procedures
(ParBuckets, ParMax, MultiLists), a general bounded-key parallel sort,
and — since this host has one core — a discrete-event simulated
multicore machine that regenerates every table and figure of the
evaluation (see DESIGN.md).

Quickstart::

    from repro import load_dataset, solve_apsp
    graph = load_dataset("WordNet")
    result = solve_apsp(graph, algorithm="parapsp",
                        num_threads=16, backend="sim")
    result.dist            # exact APSP matrix
    result.phase_times     # ordering vs Dijkstra-phase breakdown
"""

from ._version import __version__
from .core import (
    apsp_with_paths,
    par_alg1,
    par_alg2,
    par_apsp,
    seq_adaptive,
    seq_basic,
    seq_optimized,
    solve_apsp,
)
from .dist import ClusterSpec, simulate_distributed_apsp
from .core.state import APSPResult
from .graphs import CSRGraph, from_edges, load_dataset
from .order import compute_order, simulate_order
from .simx import MACHINE_I, MACHINE_II, MachineSpec
from .sort import counting_argsort, multilists_argsort
from .types import Backend, Schedule

__all__ = [
    "__version__",
    "apsp_with_paths",
    "par_alg1",
    "par_alg2",
    "par_apsp",
    "seq_adaptive",
    "seq_basic",
    "seq_optimized",
    "solve_apsp",
    "ClusterSpec",
    "simulate_distributed_apsp",
    "APSPResult",
    "CSRGraph",
    "from_edges",
    "load_dataset",
    "compute_order",
    "simulate_order",
    "MACHINE_I",
    "MACHINE_II",
    "MachineSpec",
    "counting_argsort",
    "multilists_argsort",
    "Backend",
    "Schedule",
]
