"""repro — ParAPSP: Efficient Parallel All-Pairs Shortest Paths for
Complex Graph Analysis (Kim, Choi & Bae, ICPP'18 Companion).

Reproduction of the paper's full system: Peng et al.'s modified-Dijkstra
APSP family (basic, optimized), its shared-memory parallelisations
(ParAlg1, ParAlg2, **ParAPSP**), the parallel degree-ordering procedures
(ParBuckets, ParMax, MultiLists), a general bounded-key parallel sort,
and — since this host has one core — a discrete-event simulated
multicore machine that regenerates every table and figure of the
evaluation (see DESIGN.md).

Quickstart::

    from repro import SolverConfig, load_dataset, solve_apsp
    graph = load_dataset("WordNet")
    config = SolverConfig.from_kwargs(algorithm="parapsp",
                                      num_threads=16, backend="sim")
    result = solve_apsp(graph, config=config)   # or the same kwargs
    result.dist            # exact APSP matrix
    result.phase_times     # ordering vs Dijkstra-phase breakdown

Serving queries out-of-core (see ``docs/serving.md``)::

    from repro import DistStore, QueryEngine, solve_to_store
    store = solve_to_store(graph, "apsp_store", shard_rows=256)
    engine = QueryEngine(store, cache_shards=8)
    engine.dist(3, 250)    # point query through the LRU shard cache

Multi-node: sharded serving and simulated cluster builds (see
``docs/distributed.md``)::

    from repro import RoutedEngine, ShardRouter, solve_apsp_cluster
    router = ShardRouter(4, replication=2)     # consistent-hash ring
    routed = RoutedEngine(store, router)       # same answers, N nodes
    from repro.dist import CLUSTER_FAST
    build = solve_apsp_cluster(graph, CLUSTER_FAST)   # exact + costed
"""

from ._version import __version__
from .config import (
    ServeConfig,
    SolverConfig,
    StoreConfig,
    UpdateConfig,
    load_config,
    load_serve_config,
)
from .core import (
    ShardHooks,
    SolverSpec,
    apsp_with_paths,
    get_solver,
    par_alg1,
    par_alg2,
    par_apsp,
    register_solver,
    seq_adaptive,
    seq_basic,
    seq_optimized,
    solve_apsp,
    solve_apsp_shards,
    solver_names,
)
from .exceptions import NegativeCycleError, NegativeWeightError
from .dist import ClusterSpec, simulate_distributed_apsp, solve_apsp_cluster
from .core.state import APSPResult
from .faults import FaultPlan, StoreCorruptionSpec
from .graphs import CSRGraph, from_edges, load_dataset
from .order import compute_order, simulate_order
from .serve import (
    DistStore,
    EdgeUpdate,
    QueryEngine,
    RoutedEngine,
    ServeFrontend,
    ShardRouter,
    apply_edge_updates,
    solve_to_store,
)
from .simx import MACHINE_I, MACHINE_II, MachineSpec
from .sort import counting_argsort, multilists_argsort
from .trace import Trace
from .types import Backend, Schedule

__all__ = [
    "__version__",
    "apsp_with_paths",
    "par_alg1",
    "par_alg2",
    "par_apsp",
    "seq_adaptive",
    "seq_basic",
    "seq_optimized",
    "solve_apsp",
    "solve_apsp_shards",
    "SolverSpec",
    "ShardHooks",
    "register_solver",
    "get_solver",
    "solver_names",
    "NegativeCycleError",
    "NegativeWeightError",
    "ServeConfig",
    "SolverConfig",
    "StoreConfig",
    "UpdateConfig",
    "load_config",
    "load_serve_config",
    "ClusterSpec",
    "simulate_distributed_apsp",
    "solve_apsp_cluster",
    "APSPResult",
    "FaultPlan",
    "StoreCorruptionSpec",
    "CSRGraph",
    "from_edges",
    "load_dataset",
    "compute_order",
    "simulate_order",
    "DistStore",
    "QueryEngine",
    "RoutedEngine",
    "ServeFrontend",
    "ShardRouter",
    "solve_to_store",
    "EdgeUpdate",
    "apply_edge_updates",
    "MACHINE_I",
    "MACHINE_II",
    "MachineSpec",
    "counting_argsort",
    "multilists_argsort",
    "Trace",
    "Backend",
    "Schedule",
]
