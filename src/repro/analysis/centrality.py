"""APSP-derived complex-network metrics (the paper's §1 motivation).

Everything here consumes a finished distance matrix — the library's
output — so the metrics cost O(n²) post-processing, not another graph
traversal.  Disconnected graphs are handled with the standard
conventions (Wasserman–Faust closeness normalisation, harmonic
centrality, eccentricity over the reachable set).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "NetworkSummary",
    "closeness_centrality",
    "harmonic_centrality",
    "eccentricity",
    "summarize_network",
]


def _check_matrix(dist: np.ndarray) -> int:
    dist = np.asarray(dist)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got {dist.shape}")
    if dist.shape[0] and not np.all(np.diag(dist) == 0.0):
        raise ValidationError("distance matrix diagonal must be zero")
    return dist.shape[0]


def closeness_centrality(dist: np.ndarray) -> np.ndarray:
    """Wasserman–Faust closeness: ``(r/(n-1)) · (r/Σd)`` where ``r`` is
    the number of vertices reachable from v and the sum runs over them.

    Handles disconnected graphs gracefully; isolated vertices get 0.
    """
    n = _check_matrix(dist)
    if n <= 1:
        return np.zeros(n)
    off = ~np.eye(n, dtype=bool)
    finite = np.isfinite(dist) & off
    reach = finite.sum(axis=1).astype(np.float64)
    totals = np.where(finite, dist, 0.0).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        closeness = (reach / (n - 1)) * np.where(totals > 0, reach / totals, 0.0)
    return np.nan_to_num(closeness)


def harmonic_centrality(dist: np.ndarray) -> np.ndarray:
    """``Σ 1/d(v, u)`` over ``u ≠ v`` (unreachable terms contribute 0)."""
    n = _check_matrix(dist)
    if n <= 1:
        return np.zeros(n)
    off = ~np.eye(n, dtype=bool)
    with np.errstate(divide="ignore"):
        inv = np.where(off & np.isfinite(dist) & (dist > 0), 1.0 / dist, 0.0)
    return inv.sum(axis=1)


def eccentricity(dist: np.ndarray) -> np.ndarray:
    """Farthest *reachable* vertex per source; NaN for isolated sources."""
    n = _check_matrix(dist)
    off = ~np.eye(n, dtype=bool)
    finite = np.isfinite(dist) & off
    masked = np.where(finite, dist, -np.inf)
    ecc = masked.max(axis=1)
    return np.where(finite.any(axis=1), ecc, np.nan)


@dataclass(frozen=True)
class NetworkSummary:
    """Headline APSP-derived statistics of one graph."""

    num_vertices: int
    reachable_pairs: int  # ordered pairs, excluding the diagonal
    average_path_length: float
    diameter: float
    radius: float
    global_efficiency: float

    @property
    def reachability(self) -> float:
        n = self.num_vertices
        total = n * (n - 1)
        return self.reachable_pairs / total if total else 1.0


def summarize_network(dist: np.ndarray) -> NetworkSummary:
    """Characteristic path length, diameter, radius, efficiency."""
    n = _check_matrix(dist)
    off = ~np.eye(n, dtype=bool)
    finite = np.isfinite(dist) & off
    reachable = int(finite.sum())
    if reachable == 0:
        return NetworkSummary(
            num_vertices=n,
            reachable_pairs=0,
            average_path_length=float("nan"),
            diameter=float("nan"),
            radius=float("nan"),
            global_efficiency=0.0,
        )
    values = dist[finite]
    ecc = eccentricity(dist)
    with np.errstate(divide="ignore"):
        eff = np.where(finite & (dist > 0), 1.0 / dist, 0.0).sum()
    total = n * (n - 1)
    return NetworkSummary(
        num_vertices=n,
        reachable_pairs=reachable,
        average_path_length=float(values.mean()),
        diameter=float(np.nanmax(ecc)),
        radius=float(np.nanmin(ecc)),
        global_efficiency=float(eff / total) if total else 0.0,
    )
