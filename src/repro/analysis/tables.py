"""Plain-text table rendering for the benchmark reports.

The harness prints the same rows the paper's tables/figures carry; this
module handles alignment, units and number formatting so every report
looks uniform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table", "format_number"]


def format_number(value: object, *, precision: int = 3) -> str:
    """Human-readable scalar: ints plain, floats with magnitude-aware
    formatting, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
