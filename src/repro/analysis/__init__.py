"""Analysis utilities: parallel metrics, degree distributions,
complexity fits, run statistics, ASCII tables and plots."""

from .centrality import (
    NetworkSummary,
    closeness_centrality,
    eccentricity,
    harmonic_centrality,
    summarize_network,
)
from .complexity import ExponentFit, fit_exponent
from .contention import ContentionReport, LockStats, attribute_contention
from .distribution import (
    DegreeDistribution,
    degree_distribution,
    powerlaw_slope,
)
from .metrics import (
    amdahl_fit,
    amdahl_predict,
    efficiency,
    is_hyperlinear,
    speedup,
    speedup_curve,
)
from .plots import ascii_plot
from .stats import RunStats, aggregate, measure_repeats
from .tables import format_number, format_table

__all__ = [
    "NetworkSummary",
    "closeness_centrality",
    "eccentricity",
    "harmonic_centrality",
    "summarize_network",
    "ExponentFit",
    "fit_exponent",
    "ContentionReport",
    "LockStats",
    "attribute_contention",
    "DegreeDistribution",
    "degree_distribution",
    "powerlaw_slope",
    "amdahl_fit",
    "amdahl_predict",
    "efficiency",
    "is_hyperlinear",
    "speedup",
    "speedup_curve",
    "ascii_plot",
    "RunStats",
    "aggregate",
    "measure_repeats",
    "format_number",
    "format_table",
]
