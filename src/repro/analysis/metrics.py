"""Parallel-performance metrics: speedup, efficiency, Amdahl fits.

The paper's Figures 9–10(b) plot *speedup* ``S(T) = t(1) / t(T)``;
"linear" means ``S(T) = T``, "hyper-linear" ``S(T) > T``.  Efficiency
is ``S(T) / T``.  :func:`amdahl_fit` recovers the apparent sequential
fraction from a measured speedup curve — the diagnostic that pins
ParAlg2's sub-linear curve on its O(n²) ordering.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "speedup",
    "efficiency",
    "speedup_curve",
    "amdahl_predict",
    "amdahl_fit",
    "is_hyperlinear",
]


def speedup(t1: float, t_parallel: float) -> float:
    """``t1 / t_parallel``; requires positive times."""
    if t1 <= 0 or t_parallel <= 0:
        raise ValidationError(
            f"times must be positive, got t1={t1}, tT={t_parallel}"
        )
    return t1 / t_parallel


def efficiency(t1: float, t_parallel: float, num_threads: int) -> float:
    """Speedup normalised by the thread count."""
    if num_threads < 1:
        raise ValidationError(f"num_threads must be >= 1, got {num_threads}")
    return speedup(t1, t_parallel) / num_threads


def speedup_curve(
    threads: Sequence[int], times: Sequence[float]
) -> Dict[int, float]:
    """Speedup per thread count, relative to the entry with T=1.

    Raises if no single-thread measurement is present (a speedup curve
    without its own baseline is meaningless).
    """
    threads = list(threads)
    times = list(times)
    if len(threads) != len(times):
        raise ValidationError("threads and times must align")
    if 1 not in threads:
        raise ValidationError("speedup curve needs a T=1 baseline")
    t1 = times[threads.index(1)]
    return {t: speedup(t1, x) for t, x in zip(threads, times)}


def is_hyperlinear(threads: Sequence[int], times: Sequence[float]) -> bool:
    """True when any T>1 point exceeds linear speedup."""
    curve = speedup_curve(threads, times)
    return any(s > t for t, s in curve.items() if t > 1)


def amdahl_predict(serial_fraction: float, num_threads: int) -> float:
    """Amdahl's law speedup for a given sequential fraction."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValidationError(
            f"serial fraction must be in [0, 1], got {serial_fraction}"
        )
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / num_threads)


def amdahl_fit(threads: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares estimate of the apparent sequential fraction.

    Model: ``t(T) = t1 * (f + (1-f)/T)``, solved for ``f`` in closed
    form (linear in ``f``).  Values are clipped to [0, 1]; hyper-linear
    curves fit to 0.
    """
    curve = speedup_curve(threads, times)
    xs, ys = [], []
    for t, s in curve.items():
        if t == 1:
            continue
        # 1/s = f + (1-f)/T  ->  1/s - 1/T = f (1 - 1/T)
        xs.append(1.0 - 1.0 / t)
        ys.append(1.0 / s - 1.0 / t)
    if not xs:
        raise ValidationError("need at least one T>1 measurement")
    x = np.asarray(xs)
    y = np.asarray(ys)
    f = float((x @ y) / (x @ x))
    return min(1.0, max(0.0, f))
