"""Degree-distribution analysis (Figure 3).

Figure 3 plots the WordNet degree histogram on log–log axes to show the
power law; :func:`powerlaw_slope` recovers the exponent by regression,
the standard check that a stand-in graph is scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ValidationError
from ..graphs.csr import CSRGraph
from ..graphs.degree import DegreeKind, degree_array, degree_histogram

__all__ = ["DegreeDistribution", "degree_distribution", "powerlaw_slope"]


@dataclass
class DegreeDistribution:
    """Histogram + summary statistics of a graph's degrees."""

    histogram: np.ndarray  # histogram[k] = #vertices with degree k
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    #: fraction of vertices with degree below 1% of the max — the mass
    #: ParMax's threshold sends down the sequential path (§4.2)
    below_one_percent_of_max: float

    def nonzero_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(degree, count) pairs with count > 0 — the Figure 3 dots."""
        ks = np.flatnonzero(self.histogram)
        return ks, self.histogram[ks]


def degree_distribution(
    graph: CSRGraph, kind: "DegreeKind | str" = DegreeKind.OUT
) -> DegreeDistribution:
    """Compute the Figure 3 data for a graph."""
    degrees = degree_array(graph, kind)
    if degrees.size == 0:
        raise ValidationError("cannot analyse an empty graph")
    hist = degree_histogram(degrees)
    hi = int(degrees.max())
    return DegreeDistribution(
        histogram=hist,
        min_degree=int(degrees.min()),
        max_degree=hi,
        mean_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        below_one_percent_of_max=float((degrees < 0.01 * hi).mean()),
    )


def powerlaw_slope(dist: DegreeDistribution, *, min_degree: int = 1) -> float:
    """Log–log regression slope of the *log-binned* degree histogram.

    A scale-free graph returns a slope ≈ -γ (typically γ ∈ [2, 3]).
    Raw per-degree counts give every sparse high-degree bin (count 1)
    the same regression weight as the dense head and flatten the slope;
    the standard remedy is logarithmic binning — counts are pooled into
    geometrically-growing degree bins and normalised by bin width.
    """
    ks, counts = dist.nonzero_points()
    mask = ks >= min_degree
    ks, counts = ks[mask].astype(np.float64), counts[mask].astype(np.float64)
    if ks.size < 3:
        raise ValidationError(
            "need at least 3 populated degrees for a power-law fit"
        )
    lo, hi = ks.min(), ks.max()
    if hi <= lo:
        raise ValidationError("degenerate degree range for a power-law fit")
    edges = np.unique(
        np.round(np.geomspace(lo, hi + 1, num=16)).astype(np.int64)
    )
    xs, ys = [], []
    for a, b in zip(edges[:-1], edges[1:]):
        in_bin = (ks >= a) & (ks < b)
        total = counts[in_bin].sum()
        if total <= 0:
            continue
        density = total / (b - a)  # per-degree density in the bin
        center = np.sqrt(a * max(a, b - 1))  # geometric bin centre
        xs.append(np.log(center))
        ys.append(np.log(density))
    if len(xs) < 3:
        raise ValidationError("too few populated log bins for a fit")
    slope, _intercept = np.polyfit(np.asarray(xs), np.asarray(ys), 1)
    return float(slope)
