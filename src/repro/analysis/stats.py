"""Run statistics: the paper averages every measurement over 10 runs
(§5.1); this module provides the same aggregation plus dispersion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["RunStats", "aggregate", "measure_repeats"]


@dataclass(frozen=True)
class RunStats:
    """Mean/min/max/std of repeated measurements."""

    mean: float
    std: float
    minimum: float
    maximum: float
    repeats: int

    @property
    def relative_std(self) -> float:
        return self.std / self.mean if self.mean else 0.0


def aggregate(samples: Sequence[float]) -> RunStats:
    """Summarise a sample list (the paper's 10-run average)."""
    if not samples:
        raise ValidationError("cannot aggregate zero samples")
    arr = np.asarray(list(samples), dtype=np.float64)
    return RunStats(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        repeats=int(arr.size),
    )


def measure_repeats(fn: Callable[[], float], repeats: int = 10) -> RunStats:
    """Call ``fn`` (which returns one measurement) ``repeats`` times."""
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    return aggregate([fn() for _ in range(repeats)])
