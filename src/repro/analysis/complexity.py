"""Empirical complexity-exponent regression.

Peng et al. measured their basic algorithm at ≈O(n^2.4) on scale-free
graphs by fitting runtime against n on log–log axes; the paper quotes
that figure throughout.  :func:`fit_exponent` reproduces the
methodology: run a solver over a size sweep, regress
``log(work) ~ log(n)``, report the slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ExponentFit", "fit_exponent"]


@dataclass(frozen=True)
class ExponentFit:
    """Result of a log–log complexity regression."""

    exponent: float
    coefficient: float  # work ≈ coefficient * n^exponent
    r_squared: float
    sizes: Tuple[int, ...]
    measurements: Tuple[float, ...]

    def predict(self, n: int) -> float:
        return self.coefficient * n**self.exponent


def fit_exponent(
    sizes: Sequence[int], measurements: Sequence[float]
) -> ExponentFit:
    """Fit ``measurements ≈ c · sizes^k`` by least squares in log space."""
    sizes = [int(s) for s in sizes]
    measurements = [float(m) for m in measurements]
    if len(sizes) != len(measurements):
        raise ValidationError("sizes and measurements must align")
    if len(sizes) < 3:
        raise ValidationError("need at least 3 sizes for an exponent fit")
    if min(sizes) <= 0 or min(measurements) <= 0:
        raise ValidationError("sizes and measurements must be positive")
    x = np.log(np.asarray(sizes, dtype=np.float64))
    y = np.log(np.asarray(measurements, dtype=np.float64))
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ExponentFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r2,
        sizes=tuple(sizes),
        measurements=tuple(measurements),
    )
