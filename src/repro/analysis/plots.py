"""ASCII line/scatter plots for the benchmark reports.

No matplotlib offline, so the harness renders each figure's series as a
compact character plot: good enough to eyeball the shapes the paper's
figures carry (who is above whom, where curves cross, log-scale decay).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, size: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(pos * (size - 1)))))


def ascii_plot(
    series: Dict[str, Sequence[tuple]],
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    log_x: bool = False,
    title: Optional[str] = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot named series of ``(x, y)`` points as ASCII art.

    Each series gets a marker; the legend maps markers back to names.
    ``log_y`` reproduces the paper's log-scale runtime axes (Figure 7).
    """
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    if not xs:
        return "(empty plot)"
    if log_y and min(ys) <= 0:
        raise ValueError("log-scale y needs positive values")
    if log_x and min(xs) <= 0:
        raise ValueError("log-scale x needs positive values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            col = _scale(float(x), x_lo, x_hi, width, log_x)
            row = _scale(float(y), y_lo, y_hi, height, log_y)
            grid[height - 1 - row][col] = mark
    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    label_w = max(len(y_top), len(y_bot)) + 1
    for r, row_chars in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label.rjust(label_w)}|{''.join(row_chars)}")
    lines.append(" " * label_w + "+" + "-" * width)
    x_line = f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}".rjust(8)
    lines.append(" " * (label_w + 1) + x_line)
    if xlabel or ylabel:
        lines.append(
            " " * (label_w + 1)
            + (f"x: {xlabel}" if xlabel else "")
            + (f"   y: {ylabel}{' (log)' if log_y else ''}" if ylabel else "")
        )
    lines.append(" " * (label_w + 1) + "   ".join(legend))
    return "\n".join(lines)
