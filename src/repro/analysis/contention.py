"""Lock-contention attribution from simulated execution traces.

Table 1 says ParBuckets gets *slower* with more threads; Figure 3 says
the degree distribution is why.  This module closes the loop: given a
traced lock simulation it attributes wait time to individual locks, so
a report can show that the handful of low-degree buckets absorb nearly
all of the waiting — §4.2's diagnosis, measured instead of argued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import ValidationError
from ..simx.trace import SimResult

__all__ = ["LockStats", "ContentionReport", "attribute_contention"]


@dataclass(frozen=True)
class LockStats:
    """Aggregated behaviour of one lock."""

    lock_id: int
    acquisitions: int
    total_wait: float
    total_hold: float

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0


@dataclass
class ContentionReport:
    """Per-lock attribution for one traced simulation."""

    locks: List[LockStats]
    total_wait: float
    total_hold: float

    def top_waiters(self, k: int = 5) -> List[LockStats]:
        """The k locks absorbing the most wait time."""
        return sorted(self.locks, key=lambda s: -s.total_wait)[:k]

    def wait_concentration(self, k: int = 5) -> float:
        """Fraction of all waiting spent on the top-k locks — the
        power-law pile-up statistic (≈1.0 means a few buckets serialise
        everything)."""
        if self.total_wait == 0:
            return 0.0
        return sum(s.total_wait for s in self.top_waiters(k)) / self.total_wait

    def render(self, k: int = 5) -> str:
        lines = [
            f"lock contention: {self.total_wait:,.0f} wait units over "
            f"{len(self.locks)} locks "
            f"(top-{k} absorb {self.wait_concentration(k):.1%})",
            f"{'lock':>6} {'acquisitions':>13} {'total wait':>12} "
            f"{'mean wait':>10} {'hold':>10}",
        ]
        for s in self.top_waiters(k):
            lines.append(
                f"{s.lock_id:>6} {s.acquisitions:>13,} "
                f"{s.total_wait:>12,.0f} {s.mean_wait:>10,.1f} "
                f"{s.total_hold:>10,.0f}"
            )
        return "\n".join(lines)


def attribute_contention(result: SimResult) -> ContentionReport:
    """Build a per-lock report from a traced lock simulation.

    Requires the simulation to have been run with ``trace=True`` so
    ``lock-wait`` / ``lock-hold`` events are present; a run with lock
    acquisitions but no events is rejected as untraced.
    """
    waits: Dict[int, float] = {}
    holds: Dict[int, float] = {}
    acqs: Dict[int, int] = {}
    saw_lock_events = False
    for event in result.events:
        if event.kind == "lock-wait":
            saw_lock_events = True
            waits[event.item] = waits.get(event.item, 0.0) + event.duration
        elif event.kind == "lock-hold":
            saw_lock_events = True
            holds[event.item] = holds.get(event.item, 0.0) + event.duration
            acqs[event.item] = acqs.get(event.item, 0) + 1
    if result.total_acquisitions and not saw_lock_events:
        raise ValidationError(
            "result has lock acquisitions but no lock events — run the "
            "simulation with trace=True"
        )
    lock_ids = sorted(set(waits) | set(holds))
    locks = [
        LockStats(
            lock_id=lock,
            acquisitions=acqs.get(lock, 0),
            total_wait=waits.get(lock, 0.0),
            total_hold=holds.get(lock, 0.0),
        )
        for lock in lock_ids
    ]
    return ContentionReport(
        locks=locks,
        total_wait=sum(waits.values()),
        total_hold=sum(holds.values()),
    )
