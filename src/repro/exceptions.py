"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from misuse of the Python API itself)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "DatasetError",
    "OrderingError",
    "ScheduleError",
    "BackendError",
    "SimulationError",
    "AlgorithmError",
    "NegativeWeightError",
    "NegativeCycleError",
    "ConfigError",
    "ValidationError",
    "BenchmarkError",
    "FaultPlanError",
    "FaultInjected",
    "StoreError",
    "StoreCorruptionError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph structure or graph construction failure."""


class GraphFormatError(GraphError):
    """Malformed on-disk graph data (edge lists, headers)."""


class DatasetError(ReproError):
    """Unknown dataset name or unsatisfiable dataset request."""


class OrderingError(ReproError):
    """An ordering procedure produced or received invalid data."""


class ScheduleError(ReproError):
    """Unknown or invalid loop-scheduling specification."""


class BackendError(ReproError):
    """Unknown or unusable parallel execution backend."""


class SimulationError(ReproError):
    """Inconsistent state inside the discrete-event machine simulator."""


class AlgorithmError(ReproError):
    """An APSP algorithm was invoked with invalid inputs."""


class NegativeWeightError(AlgorithmError):
    """A graph with negative arc weights was given to a solver that
    requires non-negative weights.

    Raised at dispatch time (not construction: a graph built with
    ``allow_negative=True`` is a perfectly valid graph) so the message
    can point at the solvers whose :class:`repro.core.SolverSpec`
    declares ``negative_weights=True`` — currently Johnson's algorithm.
    """


class NegativeCycleError(AlgorithmError):
    """The graph contains a cycle of negative total weight.

    Shortest-path distances are undefined on such graphs (any walk can
    be shortened forever by another lap), so Johnson's Bellman–Ford
    phase detects the condition and raises instead of returning
    garbage.  Carries a witness vertex known to be on or reachable from
    the cycle when one is available.
    """

    def __init__(
        self, message: str, *, witness: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.witness = witness


class ConfigError(AlgorithmError, ScheduleError, BackendError):
    """Invalid user-supplied solver configuration.

    Every *user-input* validation failure of :func:`repro.solve_apsp` —
    whether the knobs arrived as keyword arguments or inside a
    :class:`repro.config.SolverConfig` — raises this, with the offending
    field named as ``<group>.<field>`` (e.g. ``algorithm.ratio``).

    It deliberately subclasses the legacy validation classes
    (:class:`AlgorithmError`, :class:`ScheduleError`,
    :class:`BackendError`) so pre-existing ``except`` clauses keep
    working; *runtime* failures (a worker death, a simulator
    inconsistency) stay on the original hierarchy.
    """

    def __init__(self, message: str, *, field: "str | None" = None) -> None:
        if field is not None:
            message = f"{field}: {message}"
        super().__init__(message)
        self.field = field


class ValidationError(ReproError):
    """A result failed validation against a reference solution."""


class BenchmarkError(ReproError):
    """A benchmark experiment specification is invalid or failed to run."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed or unsatisfiable."""


class FaultInjected(ReproError):
    """An error deliberately raised by an armed :class:`repro.faults.FaultSpec`.

    Execution layers treat it like a worker death (recoverable under
    ``on_worker_death="retry"``) rather than an application bug.
    """


class StoreError(ReproError):
    """A :class:`repro.serve.DistStore` is malformed or misused."""


class StoreCorruptionError(StoreError):
    """A distance-store shard failed its checksum on load.

    Carries the ids of the shards that failed so a caller can repair
    exactly those (:meth:`repro.serve.DistStore.repair`).
    """

    def __init__(self, message: str, *, shards: "tuple | None" = None) -> None:
        super().__init__(message)
        self.shards = tuple(shards or ())


class ServeError(ReproError):
    """Invalid request or state in the query-serving layer."""
