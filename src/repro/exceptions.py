"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from misuse of the Python API itself)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "DatasetError",
    "OrderingError",
    "ScheduleError",
    "BackendError",
    "SimulationError",
    "AlgorithmError",
    "ValidationError",
    "BenchmarkError",
    "FaultPlanError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph structure or graph construction failure."""


class GraphFormatError(GraphError):
    """Malformed on-disk graph data (edge lists, headers)."""


class DatasetError(ReproError):
    """Unknown dataset name or unsatisfiable dataset request."""


class OrderingError(ReproError):
    """An ordering procedure produced or received invalid data."""


class ScheduleError(ReproError):
    """Unknown or invalid loop-scheduling specification."""


class BackendError(ReproError):
    """Unknown or unusable parallel execution backend."""


class SimulationError(ReproError):
    """Inconsistent state inside the discrete-event machine simulator."""


class AlgorithmError(ReproError):
    """An APSP algorithm was invoked with invalid inputs."""


class ValidationError(ReproError):
    """A result failed validation against a reference solution."""


class BenchmarkError(ReproError):
    """A benchmark experiment specification is invalid or failed to run."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed or unsatisfiable."""


class FaultInjected(ReproError):
    """An error deliberately raised by an armed :class:`repro.faults.FaultSpec`.

    Execution layers treat it like a worker death (recoverable under
    ``on_worker_death="retry"``) rather than an application bug.
    """
