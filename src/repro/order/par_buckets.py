"""Algorithm 5 — **ParBuckets**: parallel approximate bucket ordering.

Every thread walks its block of vertices, computes the Eq. (1) bin and
appends the vertex to the shared ``bucketList[bin]`` under that bucket's
lock; the global ``order[]`` array is then emitted sequentially from the
highest bucket down.

Two faces, like every procedure in this package:

* :func:`par_buckets_order` — the real implementation on the serial or
  thread backend (real locks, real contention counters).
* :func:`simulate_par_buckets` — the same program played on a
  :class:`~repro.simx.MachineSpec`.  On power-law graphs nearly every
  append hits the same few low-degree buckets, so simulated makespan
  *grows* with the thread count — Table 1's ParBuckets row.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import OrderingError
from ..parallel import Backend, LockArray, Schedule, parallel_for
from ..parallel.schedule import block_assignment
from ..simx.locksim import Op, run_lock_program
from ..simx.machine import MachineSpec
from ..simx.trace import SimResult, TraceEvent
from .base import DEFAULT_COSTS, OrderingCosts, OrderingResult
from .buckets import _emit_descending, find_bins

__all__ = ["par_buckets_order", "simulate_par_buckets"]


def _emission_result(
    n: int, num_buckets: int, costs: OrderingCosts, trace: bool = False
) -> SimResult:
    """Virtual cost of the sequential order[] emission loop."""
    work = n * costs.emit + num_buckets * costs.bucket_scan
    events = []
    if trace and work > 0:
        events.append(TraceEvent(0, 0, 0.0, work, label="emit-order"))
    return SimResult(
        num_threads=1,
        makespan=work,
        busy=np.array([work]),
        overhead=np.array([0.0]),
        events=events,
    )


def par_buckets_order(
    degrees: np.ndarray,
    *,
    num_threads: int = 1,
    num_bins: int = 100,
    backend: "Backend | str" = Backend.THREADS,
    costs: OrderingCosts = DEFAULT_COSTS,
) -> OrderingResult:
    """Run ParBuckets for real (locks and all) and return its order.

    With ``backend="serial"`` or one thread the result is deterministic
    (ascending vertex id within each bucket); with real threads the
    within-bucket arrival order is whatever the interleaving produced —
    faithful to the OpenMP original, and exactly why the procedure is
    only *approximately* descending.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return OrderingResult(
            method="parbuckets", order=np.empty(0, dtype=np.int64), exact=False
        )
    lo, hi = int(degrees.min()), int(degrees.max())
    bins = find_bins(degrees, hi, lo, num_bins)
    buckets: List[List[int]] = [[] for _ in range(num_bins + 1)]
    locks = LockArray(num_bins + 1)

    def body(i: int, _thread: int) -> None:
        b = int(bins[i])
        with locks[b]:
            buckets[b].append(i)

    # Algorithm 5 uses a plain `#pragma omp parallel for` — block schedule
    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=Schedule.BLOCK,
        backend=backend,
    )
    locks.publish("order.parbuckets.locks")
    order = _emit_descending(buckets)
    exact = all(
        len({int(degrees[v]) for v in bucket}) <= 1 for bucket in buckets
    )
    return OrderingResult(
        method="parbuckets",
        order=order,
        exact=exact,
        num_threads=num_threads,
        stats={
            "num_bins": float(num_bins),
            "lock_acquisitions": float(locks.total_acquisitions),
            "lock_contended": float(locks.total_contended),
        },
    )


def simulate_par_buckets(
    degrees: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int,
    num_bins: int = 100,
    costs: OrderingCosts = DEFAULT_COSTS,
    trace: bool = False,
) -> OrderingResult:
    """Play ParBuckets on the simulated machine.

    The returned order uses the deterministic serial tie convention
    (ascending vertex id within buckets); the virtual-time contention is
    computed from the true per-thread op streams.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    T = machine.clamp_threads(num_threads)
    if n == 0:
        raise OrderingError("cannot order an empty vertex set")
    lo, hi = int(degrees.min()), int(degrees.max())
    bins = find_bins(degrees, hi, lo, num_bins)

    programs = []
    for block in block_assignment(n, T):
        programs.append(
            [
                Op(work=costs.find_bin, lock_id=int(bins[i]), name="find-bin")
                for i in block
            ]
        )
    fill = run_lock_program(
        programs,
        machine,
        num_locks=num_bins + 1,
        trace=trace,
        lock_names=[f"parbuckets.bin{b}" for b in range(num_bins + 1)],
        region="parbuckets.fill",
    )
    emission = _emission_result(n, num_bins + 1, costs, trace)
    sim = fill.merge_sequential(emission)

    buckets: List[List[int]] = [[] for _ in range(num_bins + 1)]
    for v in range(n):
        buckets[bins[v]].append(v)
    order = _emit_descending(buckets)
    exact = all(
        len({int(degrees[v]) for v in bucket}) <= 1 for bucket in buckets
    )
    return OrderingResult(
        method="parbuckets",
        order=order,
        exact=exact,
        num_threads=T,
        sim=sim,
        stats={
            "num_bins": float(num_bins),
            "lock_acquisitions": float(sim.total_acquisitions),
            "lock_contended": float(sim.contended_acquisitions),
        },
    )
