"""Algorithm 7 — **MultiLists**: lock-free exact parallel ordering.

Each thread owns a private list of ``max+1`` buckets, so phase 1 (the
bucket fill) needs no locks at all.  A prefix-sum over the per-thread
bucket sizes then gives every ``(thread, degree)`` bucket its starting
position ``orderPos[tID][deg]`` in the global ``order[]`` array, and the
buckets are copied out:

* degrees below ``parRatio·max`` (≈99 % of the vertices of a power-law
  graph) are copied by a parallel region *per degree* — one
  ``#pragma omp parallel for`` over thread ids for each degree value;
* the sparse high-degree tail is copied sequentially, because
  parallelising a range that holds ~1 % of the vertices spread over 90 %
  of the degree values would mostly produce false sharing on ``order[]``.

This is the ordering ParAPSP ships with (Algorithm 8).  It produces the
*exact* descending order — identical, bucket for bucket, to
:func:`repro.order.buckets.exact_bucket_order`, with ties in ascending
vertex id (the block assignment hands each thread a contiguous id range,
and threads are drained in id order).

The same procedure doubles as a general-purpose parallel sort for keys
in a bounded range — exposed as :func:`repro.sort.multilists_sort`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import OrderingError
from ..parallel import Backend, Schedule, parallel_for
from ..parallel.schedule import block_assignment
from ..simx.locksim import Op, run_lock_program
from ..simx.machine import MachineSpec
from ..simx.trace import SimResult, TraceEvent
from .base import DEFAULT_COSTS, OrderingCosts, OrderingResult

__all__ = ["multilists_order", "simulate_multilists", "DEFAULT_PAR_RATIO"]

#: degrees below ``parRatio × max`` are merged in parallel (§4.3)
DEFAULT_PAR_RATIO = 0.1


def _fill_local_buckets(
    degrees: np.ndarray, blocks: List[np.ndarray], max_degree: int
) -> List[List[List[int]]]:
    """Phase 1: per-thread bucket lists (pure, no sharing)."""
    lists: List[List[List[int]]] = []
    for block in blocks:
        local: List[List[int]] = [[] for _ in range(max_degree + 1)]
        for i in block:
            local[int(degrees[i])].append(int(i))
        lists.append(local)
    return lists


def _order_positions(
    lists: List[List[List[int]]], max_degree: int
) -> np.ndarray:
    """Phase 2 setup: ``orderPos[tID][deg]`` start offsets.

    The global array is laid out degree-descending, and within one
    degree thread 0's bucket precedes thread 1's, and so on.
    """
    T = len(lists)
    sizes = np.zeros((T, max_degree + 1), dtype=np.int64)
    for t, local in enumerate(lists):
        for d in range(max_degree + 1):
            sizes[t, d] = len(local[d])
    pos = np.zeros((T, max_degree + 1), dtype=np.int64)
    offset = 0
    for d in range(max_degree, -1, -1):
        for t in range(T):
            pos[t, d] = offset
            offset += sizes[t, d]
    return pos


def multilists_order(
    degrees: np.ndarray,
    *,
    num_threads: int = 1,
    par_ratio: float = DEFAULT_PAR_RATIO,
    backend: "Backend | str" = Backend.THREADS,
    costs: OrderingCosts = DEFAULT_COSTS,
) -> OrderingResult:
    """Run MultiLists for real.  Exactly descending, fully deterministic.

    Phase 1 runs one task per thread id (each fills its own bucket
    list); phase 2 launches, per low degree value, one parallel region
    over thread ids — faithful to Algorithm 7's loop structure.
    """
    if not 0.0 <= par_ratio <= 1.0:
        raise OrderingError(f"par_ratio must be in [0, 1], got {par_ratio}")
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return OrderingResult(
            method="multilists", order=np.empty(0, dtype=np.int64), exact=True
        )
    T = max(1, num_threads)
    hi = int(degrees.max())
    blocks = block_assignment(n, T)

    # phase 1: parallel over thread ids, each filling its local list
    lists: List[Optional[List[List[int]]]] = [None] * T

    def fill(t: int, _thread: int) -> None:
        local: List[List[int]] = [[] for _ in range(hi + 1)]
        for i in blocks[t]:
            local[int(degrees[i])].append(int(i))
        lists[t] = local

    parallel_for(
        T, fill, num_threads=T, schedule=Schedule.BLOCK, backend=backend
    )
    filled: List[List[List[int]]] = [lst for lst in lists if lst is not None]
    if len(filled) != T:
        raise OrderingError("phase 1 failed to fill every thread's list")

    pos = _order_positions(filled, hi)
    order = np.empty(n, dtype=np.int64)
    low_cut = int(par_ratio * hi)  # degrees 0..low_cut merged in parallel

    # phase 2a: per-degree parallel regions for the low range
    for d in range(0, low_cut + 1):

        def copy_bucket(t: int, _thread: int, _d: int = d) -> None:
            p = int(pos[t, _d])
            for v in filled[t][_d]:
                order[p] = v
                p += 1

        parallel_for(
            T,
            copy_bucket,
            num_threads=T,
            schedule=Schedule.BLOCK,
            backend=backend,
        )
    # phase 2b: sequential copy of the high-degree tail
    for d in range(low_cut + 1, hi + 1):
        for t in range(T):
            p = int(pos[t, d])
            for v in filled[t][d]:
                order[p] = v
                p += 1

    return OrderingResult(
        method="multilists",
        order=order,
        exact=True,
        num_threads=T,
        stats={
            "par_ratio": float(par_ratio),
            "low_cut_degree": float(low_cut),
            "parallel_regions": float(low_cut + 2),  # fill + per-degree
        },
    )


def simulate_multilists(
    degrees: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int,
    par_ratio: float = DEFAULT_PAR_RATIO,
    costs: OrderingCosts = DEFAULT_COSTS,
    trace: bool = False,
) -> OrderingResult:
    """Play MultiLists on the simulated machine.

    Virtual phases: (1) lock-free parallel fill — per-thread busy time
    is its block size times the unlocked insert cost; (2) sequential
    orderPos prefix scan over ``(max+1)·T`` buckets; (3) one simulated
    parallel region per low degree (fork/join overhead each — the term
    that bites small graphs at 16 threads in Figure 6) with per-thread
    copy costs and a false-sharing charge at bucket boundaries;
    (4) sequential high-degree copy.
    """
    if not 0.0 <= par_ratio <= 1.0:
        raise OrderingError(f"par_ratio must be in [0, 1], got {par_ratio}")
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        raise OrderingError("cannot order an empty vertex set")
    T = machine.clamp_threads(num_threads)
    hi = int(degrees.max())
    blocks = block_assignment(n, T)
    lists = _fill_local_buckets(degrees, blocks, hi)
    pos = _order_positions(lists, hi)
    low_cut = int(par_ratio * hi)

    # ---- phase 1: lock-free fill (one parallel region)
    insert = costs.direct_bin + costs.append
    programs = [
        [Op(work=len(block) * insert, name="fill")] for block in blocks
    ]
    sim = run_lock_program(
        programs, machine, trace=trace, region="multilists.fill"
    )

    # ---- phase 2 setup: sequential prefix over (hi+1)×T buckets
    prefix_work = (hi + 1) * T * costs.prefix
    sim = sim.merge_sequential(
        _seq_result(prefix_work, "multilists.prefix", trace)
    )

    # ---- phase 3: one region per low degree
    for d in range(0, low_cut + 1):
        per_thread = []
        for t in range(T):
            size = len(lists[t][d])
            work = size * costs.emit
            if size:
                # adjacent threads write adjacent order[] slots: one
                # cache-line conflict per populated bucket boundary
                work += machine.false_sharing_penalty
            per_thread.append([Op(work=work, name=f"emit.deg{d}")])
        sim = sim.merge_sequential(
            run_lock_program(per_thread, machine, trace=trace)
        )

    # ---- phase 4: sequential high-degree copy
    n_high = sum(
        len(lists[t][d]) for t in range(T) for d in range(low_cut + 1, hi + 1)
    )
    tail_work = n_high * costs.emit + (hi - low_cut) * T * costs.bucket_scan
    sim = sim.merge_sequential(
        _seq_result(tail_work, "multilists.high-tail", trace)
    )

    order = np.empty(n, dtype=np.int64)
    for d in range(hi + 1):
        for t in range(T):
            p = int(pos[t, d])
            for v in lists[t][d]:
                order[p] = v
                p += 1

    return OrderingResult(
        method="multilists",
        order=order,
        exact=True,
        num_threads=T,
        sim=sim,
        stats={
            "par_ratio": float(par_ratio),
            "low_cut_degree": float(low_cut),
            "parallel_regions": float(low_cut + 2),
        },
    )


def _seq_result(
    work: float, name: str = "", trace: bool = False
) -> SimResult:
    events = []
    if trace and work > 0:
        events.append(TraceEvent(0, 0, 0.0, work, label=name))
    return SimResult(
        num_threads=1,
        makespan=work,
        busy=np.array([work]),
        overhead=np.array([0.0]),
        events=events,
    )
