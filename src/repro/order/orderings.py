"""Name-based dispatch over the ordering procedures.

The APSP runner and the benchmark harness refer to orderings by string;
this module is the single place that maps names to implementations —
both the *real* execution path and the *simulated* one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import OrderingError
from ..parallel import Backend
from ..simx.machine import MachineSpec
from .base import OrderingResult
from .buckets import approx_bucket_order, exact_bucket_order
from .multilists import multilists_order, simulate_multilists
from .par_buckets import par_buckets_order, simulate_par_buckets
from .par_max import par_max_order, simulate_par_max
from .selection import selection_order

__all__ = ["ORDERINGS", "ordering_names", "compute_order", "simulate_order"]

#: canonical names of all ordering procedures
ORDERINGS: Tuple[str, ...] = (
    "none",
    "selection",
    "approx-buckets",
    "exact-buckets",
    "parbuckets",
    "parmax",
    "multilists",
)


def ordering_names() -> Tuple[str, ...]:
    return ORDERINGS


def _identity(n: int) -> OrderingResult:
    return OrderingResult(
        method="none", order=np.arange(n, dtype=np.int64), exact=False
    )


def compute_order(
    name: str,
    degrees: np.ndarray,
    *,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.SERIAL,
    **kwargs,
) -> OrderingResult:
    """Run the named ordering procedure for real.

    ``"none"`` returns the identity order — what the *basic* algorithm
    (Algorithm 2 / ParAlg1) uses.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if name == "none":
        return _identity(n)
    if name == "selection":
        return selection_order(degrees, **kwargs)
    if name == "approx-buckets":
        return approx_bucket_order(degrees, **kwargs)
    if name == "exact-buckets":
        return exact_bucket_order(degrees, **kwargs)
    if name == "parbuckets":
        return par_buckets_order(
            degrees, num_threads=num_threads, backend=backend, **kwargs
        )
    if name == "parmax":
        return par_max_order(
            degrees, num_threads=num_threads, backend=backend, **kwargs
        )
    if name == "multilists":
        return multilists_order(
            degrees, num_threads=num_threads, backend=backend, **kwargs
        )
    raise OrderingError(
        f"unknown ordering {name!r}; known: {', '.join(ORDERINGS)}"
    )


def simulate_order(
    name: str,
    degrees: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int = 1,
    trace: bool = False,
    **kwargs,
) -> OrderingResult:
    """Run the named ordering on the simulated machine.

    Sequential procedures (``selection``) report a thread-independent
    virtual time; ``none`` costs nothing.  ``trace=True`` makes the
    parallel procedures record per-event timelines (lock waits carry
    the procedure's own lock names) for the unified tracing layer.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if name == "none":
        result = _identity(n)
        from ..simx.trace import SimResult

        result.sim = SimResult(
            num_threads=1,
            makespan=0.0,
            busy=np.array([0.0]),
            overhead=np.array([0.0]),
        )
        return result
    if name == "selection":
        return selection_order(degrees, machine=machine, **kwargs)
    if name == "parbuckets":
        return simulate_par_buckets(
            degrees, machine, num_threads=num_threads, trace=trace, **kwargs
        )
    if name == "parmax":
        return simulate_par_max(
            degrees, machine, num_threads=num_threads, trace=trace, **kwargs
        )
    if name == "multilists":
        return simulate_multilists(
            degrees, machine, num_threads=num_threads, trace=trace, **kwargs
        )
    raise OrderingError(
        f"ordering {name!r} has no simulated variant "
        "(sequential bucket references are priced through their parallel "
        "counterparts)"
    )
