"""Degree-ordering procedures (paper §2.2 and §4).

From slow-and-sequential to fast-and-parallel:

========== ========= ========== =============================
procedure  exact?    parallel?  paper reference
========== ========= ========== =============================
selection  yes       no         Algorithm 3 (Peng et al.)
parbuckets approx    yes        Algorithm 5 (ParBuckets)
parmax     yes       partly     Algorithm 6 (ParMax)
multilists yes       yes        Algorithm 7 (MultiLists)
========== ========= ========== =============================

Sequential references ``approx-buckets`` / ``exact-buckets`` pin down
the semantics the parallel procedures must match.
"""

from .base import (
    DEFAULT_COSTS,
    OrderingCosts,
    OrderingResult,
    check_descending,
    check_ordering,
    is_permutation,
)
from .buckets import (
    approx_bucket_order,
    bucket_fill_counts,
    exact_bucket_order,
    find_bin,
    find_bins,
)
from .multilists import DEFAULT_PAR_RATIO, multilists_order, simulate_multilists
from .orderings import ORDERINGS, compute_order, ordering_names, simulate_order
from .par_buckets import par_buckets_order, simulate_par_buckets
from .par_max import DEFAULT_THRESHOLD, par_max_order, simulate_par_max
from .selection import selection_comparison_count, selection_order

__all__ = [
    "DEFAULT_COSTS",
    "OrderingCosts",
    "OrderingResult",
    "check_descending",
    "check_ordering",
    "is_permutation",
    "approx_bucket_order",
    "bucket_fill_counts",
    "exact_bucket_order",
    "find_bin",
    "find_bins",
    "DEFAULT_PAR_RATIO",
    "multilists_order",
    "simulate_multilists",
    "ORDERINGS",
    "compute_order",
    "ordering_names",
    "simulate_order",
    "par_buckets_order",
    "simulate_par_buckets",
    "DEFAULT_THRESHOLD",
    "par_max_order",
    "simulate_par_max",
    "selection_comparison_count",
    "selection_order",
]
