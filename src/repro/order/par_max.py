"""Algorithm 6 — **ParMax**: exact parallel bucket ordering.

Two fixes over ParBuckets (§4.2):

1. one bucket per degree value (``max+1`` buckets) instead of 101 bins —
   the order becomes *exactly* descending, no Eq. (1) arithmetic needed;
2. only vertices with ``degree >= threshold·max`` (threshold 1 %) are
   inserted in the parallel locked loop; the long power-law tail of
   low-degree vertices is inserted sequentially afterwards, dodging the
   lock pile-up on the lowest buckets.  An ``added[]`` array lets the
   sequential loop skip already-inserted vertices without recomputing
   degrees.

The win is exactness and less contention; the cost is the extra O(n)
sequential pass — which is why Figure 4 shows ParMax only marginally
faster as threads grow.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import OrderingError
from ..parallel import Backend, LockArray, Schedule, parallel_for
from ..parallel.schedule import block_assignment
from ..simx.locksim import Op, run_lock_program
from ..simx.machine import MachineSpec
from ..simx.trace import SimResult, TraceEvent
from .base import DEFAULT_COSTS, OrderingCosts, OrderingResult
from .buckets import _emit_descending

__all__ = ["par_max_order", "simulate_par_max", "DEFAULT_THRESHOLD"]

#: the paper's threshold: vertices within the top 99 % of the degree
#: range (degree >= 1 % of max) go through the parallel locked loop
DEFAULT_THRESHOLD = 0.01


def _split(degrees: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean mask of vertices handled by the parallel phase."""
    if not 0.0 <= threshold <= 1.0:
        raise OrderingError(f"threshold must be in [0, 1], got {threshold}")
    hi = int(degrees.max())
    return degrees >= threshold * hi


def par_max_order(
    degrees: np.ndarray,
    *,
    num_threads: int = 1,
    threshold: float = DEFAULT_THRESHOLD,
    backend: "Backend | str" = Backend.THREADS,
    costs: OrderingCosts = DEFAULT_COSTS,
) -> OrderingResult:
    """Run ParMax for real.  Exactly descending for every backend."""
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return OrderingResult(
            method="parmax", order=np.empty(0, dtype=np.int64), exact=True
        )
    hi = int(degrees.max())
    high_mask = _split(degrees, threshold)
    buckets: List[List[int]] = [[] for _ in range(hi + 1)]
    locks = LockArray(hi + 1)
    added = np.zeros(n, dtype=bool)

    def body(i: int, _thread: int) -> None:
        if high_mask[i]:
            d = int(degrees[i])
            with locks[d]:
                buckets[d].append(i)
            added[i] = True

    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=Schedule.BLOCK,
        backend=backend,
    )
    locks.publish("order.parmax.locks")
    # second loop: the low-degree tail, sequential (lines 12–16)
    for i in range(n):
        if not added[i]:
            buckets[int(degrees[i])].append(i)
    order = _emit_descending(buckets)
    return OrderingResult(
        method="parmax",
        order=order,
        exact=True,
        num_threads=num_threads,
        stats={
            "threshold": float(threshold),
            "parallel_inserts": float(high_mask.sum()),
            "sequential_inserts": float(n - high_mask.sum()),
            "lock_acquisitions": float(locks.total_acquisitions),
            "lock_contended": float(locks.total_contended),
        },
    )


def simulate_par_max(
    degrees: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int,
    threshold: float = DEFAULT_THRESHOLD,
    costs: OrderingCosts = DEFAULT_COSTS,
    trace: bool = False,
) -> OrderingResult:
    """Play ParMax on the simulated machine.

    Virtual phases: (1) parallel locked inserts of the high-degree
    vertices — every thread still scans its whole block to *test* the
    threshold; (2) sequential ``added[]``-guarded insert of the tail;
    (3) sequential emission.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    T = machine.clamp_threads(num_threads)
    if n == 0:
        raise OrderingError("cannot order an empty vertex set")
    hi = int(degrees.max())
    high_mask = _split(degrees, threshold)

    programs: List[List[Op]] = []
    for block in block_assignment(n, T):
        prog: List[Op] = []
        for i in block:
            if high_mask[i]:
                # threshold test + direct bucket index, then locked append
                prog.append(
                    Op(
                        work=costs.threshold_check + costs.direct_bin,
                        lock_id=int(degrees[i]),
                        name="insert",
                    )
                )
            else:
                prog.append(Op(work=costs.threshold_check, name="scan"))
        programs.append(prog)
    phase1 = run_lock_program(
        programs,
        machine,
        num_locks=hi + 1,
        trace=trace,
        lock_names=[f"parmax.deg{d}" for d in range(hi + 1)],
        region="parmax.insert",
    )

    n_low = int(n - high_mask.sum())
    seq_work = (
        n * costs.added_check  # the `if added[i] = false` scan
        + n_low * (costs.direct_bin + costs.append)
        + n * costs.emit
        + (hi + 1) * costs.bucket_scan
    )
    phase2 = SimResult(
        num_threads=1,
        makespan=seq_work,
        busy=np.array([seq_work]),
        overhead=np.array([0.0]),
        events=(
            [TraceEvent(0, 0, 0.0, seq_work, label="tail-insert+emit")]
            if trace and seq_work > 0
            else []
        ),
    )
    sim = phase1.merge_sequential(phase2)

    buckets: List[List[int]] = [[] for _ in range(hi + 1)]
    for v in range(n):
        buckets[int(degrees[v])].append(v)
    return OrderingResult(
        method="parmax",
        order=_emit_descending(buckets),
        exact=True,
        num_threads=T,
        sim=sim,
        stats={
            "threshold": float(threshold),
            "parallel_inserts": float(high_mask.sum()),
            "sequential_inserts": float(n_low),
            "lock_acquisitions": float(sim.total_acquisitions),
            "lock_contended": float(sim.contended_acquisitions),
        },
    )
