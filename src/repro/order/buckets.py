"""Sequential bucket orderings: the approximate Eq. (1) binning and the
exact (max+1)-bucket counting order.

These are the single-threaded reference semantics that the parallel
procedures (ParBuckets, ParMax, MultiLists) must agree with:

* :func:`find_bin` — Eq. (1) of the paper: 101 bins between the minimum
  and maximum degree (100 widths, inclusive endpoints).
* :func:`approx_bucket_order` — assign every vertex by Eq. (1), then
  emit buckets from high to low.  Only *approximately* descending.
* :func:`exact_bucket_order` — one bucket per degree value (``max+1``
  buckets), §4.2's fix; exactly descending, ties in ascending vertex id.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import OrderingError
from .base import OrderingResult

__all__ = [
    "find_bin",
    "find_bins",
    "approx_bucket_order",
    "exact_bucket_order",
    "bucket_fill_counts",
]


def find_bin(degree: int, max_degree: int, min_degree: int, num_bins: int = 100) -> int:
    """Eq. (1): ``floor(num_bins * (deg - min) / (max - min))`` ∈ [0, num_bins].

    The paper uses ``num_bins = 100`` "widths", giving 101 buckets.  When
    every vertex has the same degree (max == min) everything maps to bin
    ``num_bins`` (the single populated bucket).
    """
    if num_bins < 1:
        raise OrderingError(f"num_bins must be >= 1, got {num_bins}")
    if degree < min_degree or degree > max_degree:
        raise OrderingError(
            f"degree {degree} outside [{min_degree}, {max_degree}]"
        )
    if max_degree == min_degree:
        return num_bins
    return int(num_bins * (degree - min_degree) // (max_degree - min_degree))


def find_bins(
    degrees: np.ndarray, max_degree: int, min_degree: int, num_bins: int = 100
) -> np.ndarray:
    """Vectorised Eq. (1) over a degree array."""
    if num_bins < 1:
        raise OrderingError(f"num_bins must be >= 1, got {num_bins}")
    degrees = np.asarray(degrees, dtype=np.int64)
    if max_degree == min_degree:
        return np.full(degrees.shape, num_bins, dtype=np.int64)
    return (num_bins * (degrees - min_degree)) // (max_degree - min_degree)


def bucket_fill_counts(
    degrees: np.ndarray, num_bins: int = 100
) -> np.ndarray:
    """How many vertices land in each Eq. (1) bucket (contention study).

    For a power-law graph nearly everything piles into bucket 0 — the
    lock hot spot of §4.2 (Figure 3's observation applied to buckets).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return np.zeros(num_bins + 1, dtype=np.int64)
    lo, hi = int(degrees.min()), int(degrees.max())
    bins = find_bins(degrees, hi, lo, num_bins)
    return np.bincount(bins, minlength=num_bins + 1).astype(np.int64)


def _emit_descending(buckets: List[List[int]]) -> np.ndarray:
    """Concatenate buckets from the highest index down (Algorithm 5
    lines 10–16 / Algorithm 6 lines 17–23)."""
    out: List[int] = []
    for b in range(len(buckets) - 1, -1, -1):
        out.extend(buckets[b])
    return np.asarray(out, dtype=np.int64)


def approx_bucket_order(
    degrees: np.ndarray, *, num_bins: int = 100
) -> OrderingResult:
    """Sequential reference of ParBuckets' *approximate* ordering."""
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return OrderingResult(
            method=f"approx-buckets-{num_bins}",
            order=np.empty(0, dtype=np.int64),
            exact=False,
        )
    lo, hi = int(degrees.min()), int(degrees.max())
    bins = find_bins(degrees, hi, lo, num_bins)
    buckets: List[List[int]] = [[] for _ in range(num_bins + 1)]
    for v in range(n):
        buckets[bins[v]].append(v)
    order = _emit_descending(buckets)
    # the ordering is exact iff each bucket is degree-homogeneous
    exact = all(
        len({int(degrees[v]) for v in bucket}) <= 1 for bucket in buckets
    )
    return OrderingResult(
        method=f"approx-buckets-{num_bins}",
        order=order,
        exact=exact,
        stats={"num_bins": float(num_bins)},
    )


def exact_bucket_order(degrees: np.ndarray) -> OrderingResult:
    """Exact descending order via (max+1)-bucket counting sort (§4.2).

    O(n + max_degree); ties come out in ascending vertex id, matching
    what ParMax/MultiLists produce under their deterministic schedules.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    if n == 0:
        return OrderingResult(
            method="exact-buckets",
            order=np.empty(0, dtype=np.int64),
            exact=True,
        )
    hi = int(degrees.max())
    buckets: List[List[int]] = [[] for _ in range(hi + 1)]
    for v in range(n):
        buckets[degrees[v]].append(v)
    return OrderingResult(
        method="exact-buckets",
        order=_emit_descending(buckets),
        exact=True,
        stats={"num_buckets": float(hi + 1)},
    )
