"""Common result types and invariants for the ordering procedures.

Every ordering procedure in this package answers the same question: in
what order should the modified Dijkstra visit source vertices?  The
optimized algorithm wants descending degree (§2.2).  The procedures
differ in *how* they compute that permutation and what it costs in
parallel — which is the subject of the paper's §4.

Invariants (checked by :func:`check_ordering`):

* the result is a permutation of ``0..n-1``;
* *exact* procedures (selection, exact buckets, ParMax, MultiLists)
  produce non-increasing degrees along the order;
* *approximate* procedures (ParBuckets with 100 bins) produce
  non-increasing *bucket indices* along the order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import OrderingError
from ..simx.trace import SimResult

__all__ = [
    "OrderingCosts",
    "OrderingResult",
    "is_permutation",
    "check_ordering",
    "check_descending",
]


@dataclass(frozen=True)
class OrderingCosts:
    """Work-unit costs of the primitive ordering operations.

    Used by the simulated variants; one unit is one simple machine
    operation, the same currency as :class:`repro.simx.MachineSpec`.
    """

    #: evaluating Eq. (1) — the bin index with the division (ParBuckets)
    find_bin: float = 8.0
    #: direct bucket index = degree (ParMax / MultiLists / exact buckets)
    direct_bin: float = 2.0
    #: appending a vertex to a (local, unlocked) bucket list
    append: float = 4.0
    #: one comparison of the selection-sort ordering (Algorithm 3)
    compare: float = 1.0
    #: swap in the selection sort
    swap: float = 3.0
    #: writing one entry of the global order[] array
    emit: float = 2.0
    #: scanning one (possibly empty) bucket header
    bucket_scan: float = 1.0
    #: checking one entry of the added[] array (ParMax second loop)
    added_check: float = 1.5
    #: ParMax first loop per-vertex work: load degree, compare against
    #: the threshold, write added[] on the taken branch
    threshold_check: float = 5.0
    #: computing one orderPos[][] prefix entry (MultiLists phase 2 setup)
    prefix: float = 2.0


DEFAULT_COSTS = OrderingCosts()


@dataclass
class OrderingResult:
    """Outcome of one ordering procedure run.

    ``order`` maps position → vertex id (``order[0]`` is the first SSSP
    source).  ``sim`` is present for simulated runs and for real runs of
    the parallel procedures when a machine model was supplied; ``stats``
    carries procedure-specific counters (lock acquisitions, contention,
    comparisons...).
    """

    method: str
    order: np.ndarray
    exact: bool
    num_threads: int = 1
    sim: Optional[SimResult] = None
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.order = np.asarray(self.order, dtype=np.int64)

    @property
    def n(self) -> int:
        return self.order.size

    @property
    def virtual_time(self) -> Optional[float]:
        """Simulated makespan of the procedure, if simulated."""
        return None if self.sim is None else self.sim.makespan


def is_permutation(order: np.ndarray, n: int) -> bool:
    """True when ``order`` contains each of ``0..n-1`` exactly once."""
    order = np.asarray(order)
    if order.shape != (n,):
        return False
    seen = np.zeros(n, dtype=bool)
    valid = (order >= 0) & (order < n)
    if not valid.all():
        return False
    seen[order] = True
    return bool(seen.all())


def check_descending(order: np.ndarray, degrees: np.ndarray) -> None:
    """Raise unless degrees are non-increasing along ``order``."""
    seq = degrees[np.asarray(order, dtype=np.int64)]
    if seq.size > 1 and np.any(np.diff(seq) > 0):
        bad = int(np.flatnonzero(np.diff(seq) > 0)[0])
        raise OrderingError(
            f"order not descending at position {bad}: "
            f"degree {seq[bad]} followed by {seq[bad + 1]}"
        )


def check_ordering(
    result: OrderingResult, degrees: np.ndarray
) -> None:
    """Validate an :class:`OrderingResult` against its contract."""
    n = degrees.size
    if not is_permutation(result.order, n):
        raise OrderingError(
            f"{result.method}: order is not a permutation of 0..{n - 1}"
        )
    if result.exact:
        check_descending(result.order, degrees)
