"""Algorithm 3's original ordering: the O(n²) selection sort.

This is the ordering step Peng *et al.* shipped and the paper's ParAlg2
keeps verbatim (lines 6–12 of Algorithm 3): for each of the first
``r·n`` positions, scan the tail and swap whenever a larger degree is
found.  It is inherently sequential (loop-carried dependency, §3.2) and
its cost — about ``r·n²/…`` comparisons — is what Table 1 reports as a
flat ≈47 s regardless of thread count.

Two implementations are provided:

* :func:`selection_order` — the faithful loop, which also counts
  comparisons and swaps (the cost model's input).  Fine up to a few
  thousand vertices.
* ``fast=True`` — a numpy counting equivalent in O(n log n) producing
  the same *degree profile* along the order (stable ties by vertex id).
  The faithful loop's swaps shuffle equal-degree vertices in a
  data-dependent way, so the permutations can differ on ties — which is
  immaterial to the algorithm (only the degree sequence matters for the
  optimization, and the APSP output is exact under any order).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import OrderingError
from ..simx.machine import MachineSpec
from ..simx.trace import SimResult
from .base import DEFAULT_COSTS, OrderingCosts, OrderingResult

__all__ = ["selection_order", "selection_comparison_count"]


def _faithful(degrees: np.ndarray, prefix: int) -> tuple[np.ndarray, int, int]:
    """The literal loop of Algorithm 3.  Returns (order, comparisons, swaps)."""
    n = degrees.size
    order = np.arange(n, dtype=np.int64)
    comparisons = 0
    swaps = 0
    deg = degrees  # local alias, hot loop
    for i in range(prefix):
        oi = order[i]
        di = deg[oi]
        for j in range(i + 1, n):
            comparisons += 1
            oj = order[j]
            if deg[oj] > di:
                order[i], order[j] = oj, oi
                oi, di = oj, deg[oj]
                swaps += 1
    return order, comparisons, swaps


def _fast_equivalent(degrees: np.ndarray, prefix: int) -> np.ndarray:
    """Degree-profile-equivalent permutation in O(n log n).

    Matches the faithful loop position by position in *degree*; among
    equal degrees it uses the stable ascending-vertex-id convention
    (the faithful loop's swaps shuffle ties data-dependently).
    """
    n = degrees.size
    if prefix >= n:
        prefix = n
    # positions sorted by (-degree, original index) give the selection
    # result whenever no ties straddle position boundaries; the faithful
    # loop's tie behaviour differs only in the *unsorted tail*, which
    # callers never rely on (only the first prefix entries are ordered).
    order = np.lexsort((np.arange(n), -degrees)).astype(np.int64)
    if prefix == n:
        return order
    # first `prefix` positions from the stable sort; remaining tail keeps
    # ascending-id order of the leftovers (what callers observe from the
    # faithful loop is only that the tail is *some* permutation of the
    # leftovers — Algorithm 3 runs Dijkstra over the whole order array,
    # so exactness of the tail order is not part of the contract)
    head = order[:prefix]
    mask = np.ones(n, dtype=bool)
    mask[head] = False
    tail = np.flatnonzero(mask).astype(np.int64)
    return np.concatenate([head, tail])


def selection_comparison_count(n: int, ratio: float) -> int:
    """Closed-form comparison count of Algorithm 3's ordering loop."""
    prefix = _prefix(n, ratio)
    # sum_{i=0}^{prefix-1} (n - 1 - i)
    return prefix * (n - 1) - prefix * (prefix - 1) // 2


def _prefix(n: int, ratio: float) -> int:
    if not 0.0 < ratio <= 1.0:
        raise OrderingError(f"ratio must be in (0, 1], got {ratio}")
    return min(n, int(np.ceil(ratio * n)))


def selection_order(
    degrees: np.ndarray,
    *,
    ratio: float = 1.0,
    fast: bool = False,
    machine: Optional[MachineSpec] = None,
    costs: OrderingCosts = DEFAULT_COSTS,
) -> OrderingResult:
    """Order vertices by Algorithm 3's (partial) selection sort.

    Parameters
    ----------
    ratio:
        The paper's ``r``: only the first ``r·n`` positions are ordered.
        The default 1.0 orders everything (what the evaluation uses).
    fast:
        Use the O(n log n) equivalent permutation; cost counters are
        then computed from the closed form instead of by counting.
    machine:
        When given, attach a single-thread :class:`SimResult` whose
        makespan prices the comparisons/swaps in work units — the
        procedure is sequential, so its virtual time is thread-count
        independent (Table 1's flat row).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    prefix = _prefix(max(n, 1), ratio) if n else 0
    if fast or n > 20_000:
        order = _fast_equivalent(degrees, prefix)
        comparisons = selection_comparison_count(n, ratio) if n else 0
        swaps = 0  # not tracked on the fast path
    else:
        order, comparisons, swaps = _faithful(degrees, prefix)

    stats = {"comparisons": float(comparisons)}
    if not fast and n <= 20_000:
        stats["swaps"] = float(swaps)

    sim: Optional[SimResult] = None
    if machine is not None:
        work = comparisons * costs.compare + stats.get("swaps", 0.0) * costs.swap
        sim = SimResult(
            num_threads=1,
            makespan=work,
            busy=np.array([work]),
            overhead=np.array([0.0]),
        )
    # exact only over the ordered prefix; with ratio=1.0 fully exact
    exact = prefix == n
    return OrderingResult(
        method="selection",
        order=order,
        exact=exact,
        num_threads=1,
        sim=sim,
        stats=stats,
    )
