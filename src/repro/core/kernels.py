"""Vectorised inner kernels of the modified Dijkstra's algorithm.

The two hot operations of Algorithm 1, expressed as numpy row
operations so a pure-Python APSP run stays tractable at the scales the
benchmark harness uses:

* :func:`merge_row` — lines 7–11: fold a finalised row ``D[t, :]`` into
  the working row ``D[s, :]`` through the known prefix ``D[s, t]``.
* :func:`relax_edges` — lines 13–18: relax every arc out of ``t`` and
  report which targets improved (they must be enqueued).

Both return enough information to maintain exact operation counts, so
the cost model is independent of the numpy implementation strategy.

Observability: when a :mod:`repro.obs` registry is installed the kernels
additionally report per-call counters (``kernel.*``), including the two
degenerate shapes that matter for the cost model's fidelity — an empty
frontier (leaf vertex, nothing to relax) and an all-infinite candidate
row (merging through a vertex not yet connected to anything useful).
Disabled, the extra cost is one module-attribute load and an ``is
None`` test per call.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..obs import metrics as _obs

__all__ = ["merge_row", "relax_edges"]


def merge_row(
    ds: np.ndarray, dt: np.ndarray, ds_t: float
) -> int:
    """``ds[v] = min(ds[v], ds_t + dt[v])`` for all v; returns the number
    of improved entries.

    ``dt`` must be a *final* distance row (its owner set ``flag``), so no
    vertex needs re-enqueueing: for any continuation v→x the final row
    already dominates, ``dt[x] ≤ dt[v] + d(v, x)``.
    """
    cand = ds_t + dt
    mask = cand < ds
    improved = int(np.count_nonzero(mask))
    if improved:
        np.copyto(ds, cand, where=mask)
    reg = _obs._current
    if reg is not None:
        reg.add("kernel.merge_row.calls", 1)
        reg.add("kernel.merge_row.improved", improved)
        if improved == 0:
            reg.add("kernel.merge_row.noop", 1)
            if np.isinf(cand).all():
                reg.add("kernel.merge_row.all_inf_row", 1)
    return improved


def relax_edges(
    ds: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    ds_t: float,
) -> Tuple[np.ndarray, int]:
    """Relax the out-arcs of one vertex.

    Returns ``(improved_targets, improved_count)`` where
    ``improved_targets`` are the neighbour ids whose distance got
    smaller (the Enqueue set of Algorithm 1 line 16).  Rows of a
    :class:`~repro.graphs.csr.CSRGraph` are duplicate-free, so the
    scatter-assign below has no write conflicts.
    """
    reg = _obs._current
    if neighbors.size == 0:
        if reg is not None:
            reg.add("kernel.relax.calls", 1)
            reg.add("kernel.relax.empty_frontier", 1)
        return neighbors, 0
    cand = ds_t + weights
    current = ds[neighbors]
    mask = cand < current
    improved = int(np.count_nonzero(mask))
    if reg is not None:
        reg.add("kernel.relax.calls", 1)
        reg.add("kernel.relax.attempted", int(neighbors.size))
        reg.add("kernel.relax.improved", improved)
    if improved == 0:
        return neighbors[:0], 0
    targets = neighbors[mask]
    ds[targets] = cand[mask]
    return targets, improved
