"""Vectorised inner kernels of the modified Dijkstra's algorithm.

Two layers live here:

**Row kernels** — the original per-call primitives of Algorithm 1:

* :func:`merge_row` — lines 7–11: fold a finalised row ``D[t, :]`` into
  the working row ``D[s, :]`` through the known prefix ``D[s, t]``.
* :func:`relax_edges` — lines 13–18: relax every arc out of ``t`` and
  report which targets improved (they must be enqueued).

**Blocked kernels** — the dispatch layer behind the batched sweep
engine (:mod:`repro.core.batch`).  A blocked kernel performs the *same
logical operations* for many working rows in one numpy call: a 2-D
min-plus merge (``cand = D[hubs] + prefix[:, None]`` folded into the
block's rows) and a concatenated-CSR frontier relaxation.  Three
implementations sit behind one interface:

=========== ===========================================================
``row``     reference: loops over the row kernels above (used to
            cross-check the vectorised paths and as a fallback)
``blocked`` pure-numpy 2-D kernels — the default
``scipy``   like ``blocked`` but gathers CSR segments through
            ``scipy.sparse`` row slicing (skipped when scipy is absent)
=========== ===========================================================

Every implementation is *bitwise-identical* in its effect on the
distance matrix and reports identical logical operation counts, so the
cost model (:mod:`repro.core.costs`) and the simulator remain valid no
matter which kernel executed the work.

Observability: when a :mod:`repro.obs` registry is installed the row
kernels report per-call counters (``kernel.merge_row.*`` /
``kernel.relax.*``) and the blocked kernels report per-batch counters
(``kernel.batch.*``).  The logical totals line up either way —
``repro.obs.regress`` checks exactly that invariant.  Disabled, the
extra cost is one module-attribute load and an ``is None`` test per
call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from ..exceptions import AlgorithmError
from ..obs import metrics as _obs

__all__ = [
    "merge_row",
    "relax_edges",
    "BlockKernel",
    "RowBlockKernel",
    "BlockedKernel",
    "ScipyBlockKernel",
    "KERNELS",
    "kernel_names",
    "resolve_kernel",
]


def merge_row(
    ds: np.ndarray, dt: np.ndarray, ds_t: float
) -> int:
    """``ds[v] = min(ds[v], ds_t + dt[v])`` for all v; returns the number
    of improved entries.

    ``dt`` must be a *final* distance row (its owner set ``flag``), so no
    vertex needs re-enqueueing: for any continuation v→x the final row
    already dominates, ``dt[x] ≤ dt[v] + d(v, x)``.
    """
    cand = ds_t + dt
    mask = cand < ds
    improved = int(np.count_nonzero(mask))
    if improved:
        np.copyto(ds, cand, where=mask)
    reg = _obs._current
    if reg is not None:
        reg.add("kernel.merge_row.calls", 1)
        reg.add("kernel.merge_row.improved", improved)
        if improved == 0:
            reg.add("kernel.merge_row.noop", 1)
            if np.isinf(cand).all():
                reg.add("kernel.merge_row.all_inf_row", 1)
    return improved


def relax_edges(
    ds: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    ds_t: float,
) -> Tuple[np.ndarray, int]:
    """Relax the out-arcs of one vertex.

    Returns ``(improved_targets, improved_count)`` where
    ``improved_targets`` are the neighbour ids whose distance got
    smaller (the Enqueue set of Algorithm 1 line 16).  Rows of a
    :class:`~repro.graphs.csr.CSRGraph` are duplicate-free, so the
    scatter-assign below has no write conflicts.
    """
    reg = _obs._current
    if neighbors.size == 0:
        if reg is not None:
            reg.add("kernel.relax.calls", 1)
            reg.add("kernel.relax.empty_frontier", 1)
        return neighbors, 0
    cand = ds_t + weights
    current = ds[neighbors]
    mask = cand < current
    improved = int(np.count_nonzero(mask))
    if reg is not None:
        reg.add("kernel.relax.calls", 1)
        reg.add("kernel.relax.attempted", int(neighbors.size))
        reg.add("kernel.relax.improved", improved)
    if improved == 0:
        return neighbors[:0], 0
    targets = neighbors[mask]
    ds[targets] = cand[mask]
    return targets, improved


# ---------------------------------------------------------------------------
# Blocked kernel dispatch layer
# ---------------------------------------------------------------------------


class BlockKernel:
    """One batched round of merge / relax work for a block of sources.

    The batched sweep engine calls :meth:`merge_block` with the rows
    that popped a flagged vertex this round and :meth:`relax_block`
    with the rows that popped an unflagged one.  Implementations must
    leave the distance matrix bitwise-identical to issuing the
    equivalent row-kernel calls one at a time (asserted by the test
    suite), which is what keeps ``OpCounts`` and the cost model honest.
    """

    name = "abstract"

    def merge_block(
        self,
        dist: np.ndarray,
        rows: np.ndarray,
        hubs: np.ndarray,
    ) -> None:
        """``dist[rows[i]] = min(dist[rows[i]], dist[rows[i], hubs[i]]
        + dist[hubs[i]])`` for every i — B merges, one call.

        ``rows`` must be duplicate-free (each source contributes at
        most one merge per round) and every ``hubs[i]`` row final.
        """
        raise NotImplementedError

    def relax_block(
        self,
        dist: np.ndarray,
        rows: np.ndarray,
        hubs: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Relax the out-arcs of ``hubs[i]`` within row ``rows[i]``.

        Returns ``(targets, attempted)``: per-segment improved
        neighbour ids (the Enqueue sets, in CSR order) and the
        per-segment attempted-arc counts.  ``rows`` duplicate-free.
        """
        raise NotImplementedError


class RowBlockKernel(BlockKernel):
    """Reference implementation: loop over the row kernels.

    Emits ``kernel.merge_row.*`` / ``kernel.relax.*`` counters exactly
    like the unbatched sweep; exists so the vectorised kernels can be
    cross-checked against the audited primitives.
    """

    name = "row"

    def merge_block(self, dist, rows, hubs) -> None:
        for r, h in zip(rows, hubs):
            merge_row(dist[r], dist[h], float(dist[r, h]))

    def relax_block(self, dist, rows, hubs, indptr, indices, weights):
        targets: List[np.ndarray] = []
        attempted = np.empty(rows.size, dtype=np.int64)
        for i, (r, h) in enumerate(zip(rows, hubs)):
            lo, hi = indptr[h], indptr[h + 1]
            nbrs = indices[lo:hi]
            attempted[i] = nbrs.size
            got, _ = relax_edges(
                dist[r], nbrs, weights[lo:hi], float(dist[r, h])
            )
            targets.append(got)
        return targets, attempted


class BlockedKernel(BlockKernel):
    """Pure-numpy 2-D kernels: one call per round, any block size."""

    name = "blocked"

    def merge_block(self, dist, rows, hubs) -> None:
        prefix = dist[rows, hubs]
        cand = dist[hubs]  # (B, n) gather — a copy, safe to mutate
        cand += prefix[:, None]
        cur = dist[rows]
        reg = _obs._current
        if reg is not None:
            improved = int(np.count_nonzero(cand < cur))
            reg.add("kernel.batch.merge.calls", 1)
            reg.add("kernel.batch.merge.rows", int(rows.size))
            reg.add("kernel.batch.merge.improved", improved)
        np.minimum(cur, cand, out=cur)
        dist[rows] = cur

    def _gather_segments(
        self, hubs, indptr, indices, weights
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated CSR slices of ``hubs`` → (nbrs, ws, lens)."""
        starts = indptr[hubs]
        lens = indptr[hubs + 1] - starts
        total = int(lens.sum())
        if total == 0:
            empty = indices[:0]
            return empty, weights[:0], lens
        # flat positions: for segment k, starts[k] + (0 .. lens[k]-1)
        seg_flat = np.cumsum(lens) - lens
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_flat, lens)
            + np.repeat(starts, lens)
        )
        return indices[pos], weights[pos], lens

    def relax_block(self, dist, rows, hubs, indptr, indices, weights):
        nbrs, ws, lens = self._gather_segments(
            hubs, indptr, indices, weights
        )
        reg = _obs._current
        bounds = np.cumsum(lens)
        total = int(bounds[-1]) if lens.size else 0
        if total == 0:
            if reg is not None:
                reg.add("kernel.batch.relax.calls", 1)
                reg.add("kernel.batch.relax.segments", int(rows.size))
                reg.add("kernel.batch.relax.empty", int(rows.size))
            return [nbrs] * rows.size, lens
        rowrep = np.repeat(rows, lens)
        base = np.repeat(dist[rows, hubs], lens)
        cand = base + ws
        cur = dist[rowrep, nbrs]
        mask = cand < cur
        imp = np.flatnonzero(mask)
        if imp.size:
            # rows are duplicate-free and each CSR row is
            # duplicate-free, so every (row, nbr) pair is unique and
            # the scatter-assign has no write conflicts
            dist[rowrep[imp], nbrs[imp]] = cand[imp]
        imp_nbrs = nbrs[imp]
        # manual slicing instead of np.split: the per-chunk dispatch of
        # array_split dominates this kernel's fixed cost otherwise
        cuts = np.searchsorted(imp, bounds).tolist()
        targets = []
        prev = 0
        for end in cuts:
            targets.append(imp_nbrs[prev:end])
            prev = end
        if reg is not None:
            reg.add("kernel.batch.relax.calls", 1)
            reg.add("kernel.batch.relax.segments", int(rows.size))
            reg.add("kernel.batch.relax.attempted", total)
            reg.add("kernel.batch.relax.improved", int(imp.size))
            empties = int(np.count_nonzero(lens == 0))
            if empties:
                reg.add("kernel.batch.relax.empty", empties)
        return targets, lens


class ScipyBlockKernel(BlockedKernel):
    """Blocked kernels with CSR segment gathering via ``scipy.sparse``.

    Row slicing a scipy CSR matrix concatenates the per-row index and
    data arrays in C, which replaces the repeat/cumsum position
    arithmetic of the numpy implementation.  Only registered when
    scipy is importable (the container may not ship it).
    """

    name = "scipy"

    def __init__(self) -> None:
        from scipy import sparse  # noqa: F401 — availability probe

        self._sparse = sparse
        self._cache_key: Optional[int] = None
        self._cache_mat = None

    def _matrix(self, indptr, indices, weights):
        key = id(indices)
        if self._cache_key != key:
            n = indptr.size - 1
            self._cache_mat = self._sparse.csr_matrix(
                (weights, indices, indptr), shape=(n, n), copy=False
            )
            self._cache_key = key
        return self._cache_mat

    def _gather_segments(self, hubs, indptr, indices, weights):
        mat = self._matrix(indptr, indices, weights)
        sub = mat[hubs]
        lens = np.diff(sub.indptr).astype(np.int64)
        return sub.indices.astype(np.int64), sub.data, lens


def _available_kernels() -> Dict[str, Type[BlockKernel]]:
    kernels: Dict[str, Type[BlockKernel]] = {
        RowBlockKernel.name: RowBlockKernel,
        BlockedKernel.name: BlockedKernel,
    }
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is usually present
        pass
    else:
        kernels[ScipyBlockKernel.name] = ScipyBlockKernel
    return kernels


#: registry of available blocked-kernel implementations
KERNELS: Dict[str, Type[BlockKernel]] = _available_kernels()


def kernel_names() -> Tuple[str, ...]:
    return tuple(KERNELS)


def resolve_kernel(name: "str | BlockKernel" = "auto") -> BlockKernel:
    """Instantiate a blocked kernel by name (``"auto"`` → ``blocked``)."""
    if isinstance(name, BlockKernel):
        return name
    if name == "auto":
        name = BlockedKernel.name
    try:
        return KERNELS[name]()
    except KeyError:
        raise AlgorithmError(
            f"unknown kernel {name!r}; available: "
            f"{', '.join(KERNELS)} (or 'auto')"
        ) from None
