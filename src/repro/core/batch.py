"""Batched multi-source sweep engine (blocked min-plus execution).

The unbatched sweep (:mod:`repro.core.sweep`) runs Algorithm 1 one
source and one row-operation at a time, so on a single core the
Python/numpy dispatch overhead of every ``merge_row`` / ``relax_edges``
call dominates the actual arithmetic.  This module executes a *block*
of B sources in lockstep rounds instead: each round, every still-active
source of the block classifies the head of its own queue, and then

* all sources that popped a flagged vertex are folded in **one** 2-D
  blocked min-plus kernel (``cand = D[hubs] + D[rows, hubs][:, None]``,
  masked min into the block's working rows), and
* all sources that popped an unflagged vertex relax their frontiers in
  **one** concatenated-CSR scatter.

The per-pop numpy dispatch cost is thereby amortised over the whole
block (see ``docs/perf.md`` for measurements).

Equivalence to the unbatched path
---------------------------------
Each source keeps its *own* queue, dedup state and operation counters,
and every read of another row touches only **final** rows — so each
source's logical operation sequence is exactly the one the unbatched
sweep would issue.  In *strict* mode (serial backend, or one worker)
the engine additionally stalls a source whose queue head is an
earlier-ordered source of the same block that has not finished yet —
precisely the rows the sequential sweep would have had available — and
is therefore **bitwise-identical** to the unbatched path in both the
distance matrix and the per-source ``OpCounts`` (asserted by
``tests/integration/test_property_batch.py``).  In *racy* mode
(threads/process workers) flags are read opportunistically like the
unbatched concurrent sweep: a missed flag only forgoes reuse, the
output is exact either way.

Stall progress argument: a source only ever waits on an *earlier*
position of its own block, so the earliest unfinished source of a block
can never stall — every round makes progress and the lockstep cannot
deadlock.

Block size selection: pass an explicit B, or ``"auto"`` to let
:func:`autotune_block_size` measure the blocked merge kernel at a few
candidate sizes (calibrate-style timed samples) and pick the smallest
block within 10% of the best per-row throughput.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..obs import metrics as _obs
from ..types import OpCounts
from .kernels import BlockKernel, merge_row, relax_edges, resolve_kernel
from .state import APSPState

__all__ = [
    "BlockTuneSample",
    "autotune_block_size",
    "resolve_block_size",
    "run_block",
]

#: candidate block sizes probed by the auto-tuner
TUNE_CANDIDATES: Tuple[int, ...] = (16, 32, 64, 128, 256)

#: accept the smallest candidate within this factor of the best
TUNE_SLACK = 1.10

#: drop out of lockstep into sequential sprints at/below this occupancy
#: (low-occupancy rounds pay the blocked kernels' fixed cost for
#: nothing; the inline row-kernel loop is faster there)
SPRINT_THRESHOLD = 4

#: dispatch a round's merge/relax set to the row kernels below these
#: batch sizes (measured break-even of the blocked kernels' fixed cost)
MERGE_BATCH_MIN = 3
RELAX_BATCH_MIN = 6


@dataclass(frozen=True)
class BlockTuneSample:
    """One timed probe of the blocked merge kernel."""

    block_size: int
    seconds_per_row: float


def autotune_block_size(
    n: int,
    *,
    kernel: "str | BlockKernel" = "auto",
    candidates: Sequence[int] = TUNE_CANDIDATES,
    repeats: int = 3,
) -> Tuple[int, List[BlockTuneSample]]:
    """Measure the blocked merge kernel and pick a block size.

    Times ``merge_block`` on synthetic rows of the workload's real row
    length ``n`` for each candidate B (best of ``repeats``), then
    returns the smallest B whose per-row time is within
    :data:`TUNE_SLACK` of the fastest — bigger blocks amortise
    dispatch but serialise more of a block behind stalls, so the
    smallest near-optimal block wins.
    """
    n = int(n)
    if n <= 1:
        return 1, []
    usable = sorted({int(b) for b in candidates if 1 <= int(b) <= n})
    if not usable:
        return 1, []
    kern = resolve_kernel(kernel)
    rows_needed = 2 * max(usable)
    rng = np.random.default_rng(0)
    dist = rng.uniform(1.0, 100.0, size=(rows_needed, n))
    samples: List[BlockTuneSample] = []
    # the synthetic timing probes are not algorithm work: suppress the
    # installed metrics registry so they cannot pollute kernel.* counters
    # (repro.obs.regress cross-checks those against ops.* totals)
    with _obs.use_registry(None):
        for b in usable:
            rows = np.arange(b, dtype=np.int64)
            hubs = np.minimum(rows + b, n - 1)  # valid as rows and columns
            kern.merge_block(dist, rows, hubs)  # warm-up
            best = float("inf")
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                kern.merge_block(dist, rows, hubs)
                best = min(best, time.perf_counter() - t0)
            samples.append(BlockTuneSample(b, best / b))
    floor = min(s.seconds_per_row for s in samples)
    for s in samples:  # usable is sorted ascending
        if s.seconds_per_row <= floor * TUNE_SLACK:
            return s.block_size, samples
    return samples[-1].block_size, samples  # pragma: no cover


def resolve_block_size(
    block_size: "int | str | None",
    n: int,
    *,
    kernel: "str | BlockKernel" = "auto",
) -> Optional[int]:
    """Normalise the ``block_size`` knob: None, ``"auto"`` or an int."""
    if block_size is None:
        return None
    if isinstance(block_size, str):
        if block_size == "auto":
            tuned, _ = autotune_block_size(n, kernel=kernel)
            return max(1, tuned)
        try:
            block_size = int(block_size)
        except ValueError:
            raise AlgorithmError(
                f"block_size must be a positive int, 'auto' or None; "
                f"got {block_size!r}"
            ) from None
    block_size = int(block_size)
    if block_size < 1:
        raise AlgorithmError(
            f"block_size must be >= 1, got {block_size}"
        )
    return min(block_size, max(1, n))


def run_block(
    graph: CSRGraph,
    state: APSPState,
    block_sources: np.ndarray,
    positions: np.ndarray,
    *,
    queue: str = "fifo",
    use_flags: bool = True,
    strict: bool = True,
    kernel: "str | BlockKernel" = "auto",
) -> Dict[int, OpCounts]:
    """Run one block of sources in lockstep; returns per-source counts.

    ``block_sources`` are the sources of this block in issue order;
    ``positions`` is the inverse permutation of the *full* sweep order
    (``positions[order[i]] == i``), which strict mode uses to decide
    merge-vs-relax exactly like the sequential sweep would.

    Scheduling inside the block:

    * sources that would stall (strict mode, queue head is an earlier
      in-block source that has not finished) are *parked* on their
      blocker and woken when it finishes — no per-round re-checks;
    * when a round's merge or relax set is a singleton it dispatches to
      the row kernels (the blocked kernels' fixed cost only pays off
      for 2+ rows);
    * when only one source is runnable it *sprints*: the engine drops
      out of lockstep and drains that queue with the plain inline loop
      at unbatched speed.  In strict mode the lone runnable source is
      provably the earliest unfinished one (parked sources wait on
      earlier positions), so it can never stall mid-sprint.
    """
    if queue not in ("fifo", "heap"):
        raise AlgorithmError(f"unknown queue discipline {queue!r}")
    kern = resolve_kernel(kernel)
    dist = state.dist
    flag = state.flag
    n = state.n
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    srcs = [int(s) for s in block_sources]
    nb = len(srcs)
    reg = _obs._current
    fifo = queue == "fifo"
    pos_list: List[int] = positions.tolist() if strict else []
    pos_s: List[int] = [pos_list[s] for s in srcs] if strict else [0] * nb
    blk_index: Dict[int, int] = {s: j for j, s in enumerate(srcs)}
    rows_v: List[np.ndarray] = [dist[s] for s in srcs]  # 1-D row views

    for s in srcs:
        dist[s, s] = 0.0  # Algorithm 1 line 2

    if fifo:
        queues: List = [deque((s,)) for s in srcs]
        in_queue: List[bytearray] = []
        for s in srcs:
            iq = bytearray(n)
            iq[s] = 1
            in_queue.append(iq)
    else:
        queues = [[(0.0, s)] for s in srcs]
        in_queue = []

    pops = [0] * nb
    relax_att = [0] * nb
    relax_imp = [0] * nb
    merges = [0] * nb
    peaks = [1] * nb
    finished = [False] * nb
    parked_on: List[List[int]] = [[] for _ in range(nb)]
    out: Dict[int, OpCounts] = {}
    active = list(range(nb))
    rounds = 0
    parks = 0
    sprints = 0

    def finish(j: int) -> List[int]:
        """Close source j's sweep; returns the sources it unblocks."""
        s = srcs[j]
        counts = OpCounts(
            pops=pops[j],
            edge_relaxations=relax_att[j],
            edge_improvements=relax_imp[j],
            row_merges=merges[j],
            merge_comparisons=merges[j] * n,
            flag_hits=merges[j],
        )
        out[s] = counts
        finished[j] = True
        flag[s] = 1  # Algorithm 1 line 21 — row s is now final
        if reg is not None:
            reg.add("sweep.count", 1)
            reg.add_many(counts.as_dict(), prefix="ops")
            reg.gauge_max(
                f"sweep.{queue}.peak_queue_occupancy", peaks[j]
            )
        woken = parked_on[j]
        parked_on[j] = []
        return woken

    def sprint_fifo(j: int) -> None:
        s = srcs[j]
        q = queues[j]
        iq = in_queue[j]
        row = rows_v[j]
        ps = pos_s[j]
        while q:
            if reg is not None and len(q) > peaks[j]:
                peaks[j] = len(q)
            t = q.popleft()
            iq[t] = 0
            pops[j] += 1
            if use_flags and t != s and (
                pos_list[t] < ps if strict else flag[t]
            ):
                merges[j] += 1
                merge_row(row, dist[t], float(row[t]))
                continue
            lo, hi = indptr[t], indptr[t + 1]
            nbrs = indices[lo:hi]
            relax_att[j] += int(nbrs.size)
            got, k = relax_edges(row, nbrs, weights[lo:hi], float(row[t]))
            relax_imp[j] += k
            for v in got.tolist():
                if not iq[v]:
                    iq[v] = 1
                    q.append(v)

    def sprint_heap(j: int) -> None:
        s = srcs[j]
        q = queues[j]
        row = rows_v[j]
        ps = pos_s[j]
        while q:
            if reg is not None and len(q) > peaks[j]:
                peaks[j] = len(q)
            d, t = heapq.heappop(q)
            pops[j] += 1
            if d > row[t]:
                continue  # stale entry (lazy deletion)
            if use_flags and t != s and (
                pos_list[t] < ps if strict else flag[t]
            ):
                merges[j] += 1
                merge_row(row, dist[t], float(row[t]))
                continue
            lo, hi = indptr[t], indptr[t + 1]
            nbrs = indices[lo:hi]
            relax_att[j] += int(nbrs.size)
            got, k = relax_edges(row, nbrs, weights[lo:hi], float(row[t]))
            relax_imp[j] += k
            for v in got.tolist():
                heapq.heappush(q, (float(row[v]), v))

    sprint = sprint_fifo if fifo else sprint_heap

    while active:
        if len(active) <= SPRINT_THRESHOLD:
            # low occupancy: sprint the earliest-position runnable
            # source sequentially.  In strict mode that source is the
            # earliest *unfinished* one (parked sources wait on earlier
            # positions, and the earliest unfinished can never park),
            # so the sprint can never need a row that is not final.
            j = min(active, key=pos_s.__getitem__) if strict else active[0]
            sprints += 1
            sprint(j)
            active.remove(j)
            active.extend(finish(j))
            continue

        rounds += 1
        next_active: List[int] = []
        merge_js: List[int] = []
        merge_ts: List[int] = []
        relax_js: List[int] = []
        relax_ts: List[int] = []
        for j in active:
            q = queues[j]
            s = srcs[j]
            if fifo:
                # pop optimistically; parking is rare enough that the
                # appendleft put-back beats a peek-then-pop on every pop
                t = q.popleft()
            else:
                # skip stale entries exactly like the unbatched sweep
                # (lazy deletion; the row is not touched in between)
                row = rows_v[j]
                while q:
                    d, t = heapq.heappop(q)
                    pops[j] += 1
                    if d > row[t]:
                        t = -1
                        continue
                    break
                if t < 0:
                    next_active.extend(finish(j))
                    continue
            do_merge = False
            if use_flags and t != s:
                if strict:
                    # positional rule: the sequential sweep would see
                    # flag[t] set iff t was issued earlier
                    if pos_list[t] < pos_s[j]:
                        jb = blk_index.get(t)
                        if jb is not None and not finished[jb]:
                            # row t not final yet — park until it is
                            if fifo:
                                q.appendleft(t)
                            else:
                                heapq.heappush(q, (d, t))
                                pops[j] -= 1
                            parked_on[jb].append(j)
                            parks += 1
                            continue
                        do_merge = True
                elif flag[t]:
                    do_merge = True
            if fifo:
                in_queue[j][t] = 0
                pops[j] += 1
            if do_merge:
                merges[j] += 1
                merge_js.append(j)
                merge_ts.append(t)
            else:
                relax_js.append(j)
                relax_ts.append(t)
            next_active.append(j)

        if merge_js:
            if len(merge_js) < MERGE_BATCH_MIN:
                for k, j in enumerate(merge_js):
                    row = rows_v[j]
                    t = merge_ts[k]
                    merge_row(row, dist[t], float(row[t]))
            else:
                kern.merge_block(
                    dist,
                    np.fromiter(
                        (srcs[j] for j in merge_js),
                        np.int64,
                        len(merge_js),
                    ),
                    np.fromiter(merge_ts, np.int64, len(merge_ts)),
                )
        if relax_js:
            if len(relax_js) < RELAX_BATCH_MIN:
                targets = []
                lens = []
                for k, j in enumerate(relax_js):
                    row = rows_v[j]
                    t = relax_ts[k]
                    lo, hi = indptr[t], indptr[t + 1]
                    nbrs = indices[lo:hi]
                    got, _k = relax_edges(
                        row, nbrs, weights[lo:hi], float(row[t])
                    )
                    targets.append(got)
                    lens.append(int(nbrs.size))
            else:
                targets, lens = kern.relax_block(
                    dist,
                    np.fromiter(
                        (srcs[j] for j in relax_js),
                        np.int64,
                        len(relax_js),
                    ),
                    np.fromiter(relax_ts, np.int64, len(relax_ts)),
                    indptr,
                    indices,
                    weights,
                )
            if fifo:
                for k, j in enumerate(relax_js):
                    relax_att[j] += int(lens[k])
                    got = targets[k]
                    relax_imp[j] += int(got.size)
                    if got.size:
                        q = queues[j]
                        iq = in_queue[j]
                        for v in got.tolist():
                            if not iq[v]:
                                iq[v] = 1
                                q.append(v)
                        if reg is not None and len(q) > peaks[j]:
                            peaks[j] = len(q)
            else:
                for k, j in enumerate(relax_js):
                    relax_att[j] += int(lens[k])
                    got = targets[k]
                    relax_imp[j] += int(got.size)
                    if got.size:
                        q = queues[j]
                        row = rows_v[j]
                        for v in got.tolist():
                            heapq.heappush(q, (float(row[v]), v))
                        if reg is not None and len(q) > peaks[j]:
                            peaks[j] = len(q)

        active = []
        for j in next_active:
            if queues[j]:
                active.append(j)
            else:
                active.extend(finish(j))

    if reg is not None:
        reg.add("kernel.batch.blocks", 1)
        reg.add("kernel.batch.rounds", rounds)
        reg.add("kernel.batch.sprints", sprints)
        if parks:
            reg.add("kernel.batch.stalls", parks)
    return out
