"""Δ-stepping SSSP as a registered APSP solver.

Meyer & Sanders' Δ-stepping (the parallel formulation of arXiv
1604.02113) replaces Dijkstra's priority queue with an array of
*buckets* of width Δ: bucket ``i`` holds vertices whose tentative
distance lies in ``[iΔ, (i+1)Δ)``.  Edges are split once per solve into
**light** (``w ≤ Δ``, may re-insert into the current bucket) and
**heavy** (``w > Δ``, always target a later bucket); a bucket is
repeatedly drained of light work, then the heavy edges of everything it
settled are relaxed in one pass.

Two PriorityGraph/GraphIt optimizations (arXiv 1911.07260) are
implemented and individually counted:

* **lazy bucket update** — an improved vertex is appended to its new
  bucket without removing the stale entry; staleness is detected on pop
  (``delta.lazy_skips``).  This is what makes the bucket structure an
  append-only array instead of a linked structure with random deletes.
* **bucket fusion** — a light relaxation that lands back in the
  *current* bucket joins the in-progress frontier instead of waiting
  for the next epoch (``delta.bucket_fusions``), collapsing the long
  tail of tiny sub-phases.

APSP-wise each source is an independent Δ-stepping run (no cross-source
flag reuse: the bucket structure has no analogue of Algorithm 1's
row-merge shortcut), which makes retries after worker death trivially
exact — a re-run row is bitwise the same.

On the SIM backend the per-source runs are dispatched by the usual
virtual parfor, and the *within-source* shared-bucket maintenance of a
parallel Δ-stepping implementation is modelled by a lock program over
one representative source's recorded bucket-insertion log: each
insertion acquires its bucket's lock, producing named
``delta.bucket<i>`` lock events directly comparable to ParBuckets'
``parbuckets.bin<i>`` in traces and contention reports.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import AlgorithmError, BackendError, ConfigError
from ..graphs.csr import CSRGraph
from ..graphs.degree import degree_array
from ..obs import metrics as _obs
from ..order import compute_order, simulate_order
from ..parallel import Backend, Schedule, parallel_for
from ..parallel.backends.process import (
    SharedArray,
    fork_available,
    run_parallel_map,
)
from ..parallel.schedule import block_assignment
from ..simx.locksim import Op, run_lock_program
from ..simx.machine import MachineSpec, default_machine
from ..types import INF, OpCounts, PhaseTimes
from .calibrate import CalibrationSample
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .registry import ShardHooks, SolverSpec, register_solver
from .state import APSPResult, APSPState, new_state
from .sweep import SweepOutcome, _row_resetter

__all__ = [
    "DeltaGraph",
    "delta_stepping_sssp",
    "autotune_delta",
    "run_delta_sweep",
    "simulate_delta_sweep",
    "DELTA_AUTOTUNE_FACTORS",
]

#: multiples of the mean arc weight probed by :func:`autotune_delta`
DELTA_AUTOTUNE_FACTORS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

#: distinct bucket locks modelled in the SIM contention program; bucket
#: ids map onto locks modulo this, like a fixed-size lock array would
_SIM_BUCKET_LOCKS = 64


class DeltaGraph:
    """One graph pre-split into light (``w ≤ Δ``) and heavy (``w > Δ``)
    CSR adjacency, built once per solve and shared by every sweep."""

    __slots__ = (
        "graph", "delta",
        "light_indptr", "light_indices", "light_weights",
        "heavy_indptr", "heavy_indices", "heavy_weights",
    )

    def __init__(self, graph: CSRGraph, delta: float) -> None:
        delta = float(delta)
        if not (delta > 0) or not np.isfinite(delta):
            raise ConfigError(
                f"delta must be a positive finite number, got {delta!r}",
                field="algorithm.delta",
            )
        self.graph = graph
        self.delta = delta
        n = graph.num_vertices
        src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.indptr)
        )
        light = graph.weights <= delta
        for prefix, mask in (("light", light), ("heavy", ~light)):
            counts = np.bincount(src[mask], minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            setattr(self, f"{prefix}_indptr", indptr)
            setattr(self, f"{prefix}_indices", graph.indices[mask])
            setattr(self, f"{prefix}_weights", graph.weights[mask])

    @property
    def n(self) -> int:
        return self.graph.num_vertices


def delta_stepping_sssp(
    dg: DeltaGraph,
    source: int,
    dist: np.ndarray,
    *,
    insert_log: Optional[List[int]] = None,
) -> OpCounts:
    """One Δ-stepping SSSP from ``source`` into the row ``dist``.

    ``dist`` (length n) is reset at the start — re-running a sweep after
    a worker death reproduces the row bitwise with no external reset.
    ``insert_log`` collects the bucket index of every insertion (the SIM
    contention model replays it as a lock program).

    Returned :class:`~repro.types.OpCounts` use the shared vocabulary —
    ``pops`` = settled bucket pops, ``edge_relaxations`` = arcs scanned,
    ``edge_improvements`` = successful relaxations — so
    :meth:`~repro.core.costs.DijkstraCostModel.sweep_cost` prices a
    Δ-stepping sweep with no new constants (the merge/row terms are
    simply zero: there is no flag reuse).
    """
    n = dg.n
    if not (0 <= source < n):
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    delta = dg.delta
    l_indptr, l_indices, l_weights = (
        dg.light_indptr, dg.light_indices, dg.light_weights
    )
    h_indptr, h_indices, h_weights = (
        dg.heavy_indptr, dg.heavy_indices, dg.heavy_weights
    )
    dist[:] = INF
    dist[source] = 0.0
    # distance at which a vertex last had its light edges expanded;
    # INF = never.  Re-expansion only on strict improvement.
    relaxed_at = np.full(n, INF)
    buckets: List[List[int]] = [[source]]
    counts = OpCounts()
    buckets_processed = 0
    light_relax = 0
    heavy_relax = 0
    fusions = 0
    lazy_skips = 0

    def relax(v: int, d: float, indptr, indices, weights, current: int):
        """Relax one vertex's (light or heavy) arcs; returns arcs
        scanned and improvements, appending targets to their buckets."""
        nonlocal fusions
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        if lo == hi:
            return 0, 0
        nbrs = indices[lo:hi]
        cand = d + weights[lo:hi]
        improved = 0
        # candidate mask against a snapshot; the per-edge re-check below
        # keeps duplicate targets within one row correct
        for k in np.nonzero(cand < dist[nbrs])[0]:
            t = int(nbrs[k])
            nd = float(cand[k])
            if nd >= dist[t]:
                continue
            dist[t] = nd
            b = int(nd / delta)
            if insert_log is not None:
                insert_log.append(b)
            if current >= 0 and b == current:
                # bucket fusion: joins the live frontier of this epoch
                buckets[current].append(t)
                fusions += 1
            else:
                while len(buckets) <= b:
                    buckets.append([])
                buckets[b].append(t)
            improved += 1
        return hi - lo, improved

    i = 0
    while True:
        while i < len(buckets) and not buckets[i]:
            i += 1
        if i >= len(buckets):
            break
        buckets_processed += 1
        settled: List[int] = []
        frontier = buckets[i]
        while frontier:
            v = frontier.pop()
            d = float(dist[v])
            if int(d / delta) != i:
                lazy_skips += 1  # stale entry (lazy bucket update)
                continue
            if d >= relaxed_at[v]:
                lazy_skips += 1  # duplicate at an unimproved distance
                continue
            if relaxed_at[v] == INF:
                settled.append(v)
            relaxed_at[v] = d
            counts.pops += 1
            scanned, improved = relax(
                v, d, l_indptr, l_indices, l_weights, i
            )
            light_relax += scanned
            counts.edge_relaxations += scanned
            counts.edge_improvements += improved
        # bucket i is final: one heavy pass over everything it settled
        for v in settled:
            scanned, improved = relax(
                v, float(dist[v]), h_indptr, h_indices, h_weights, -1
            )
            heavy_relax += scanned
            counts.edge_relaxations += scanned
            counts.edge_improvements += improved
        i += 1

    reg = _obs._current
    if reg is not None:
        reg.add("sweep.count", 1)
        reg.add_many(counts.as_dict(), prefix="ops")
        reg.add("delta.buckets_processed", buckets_processed)
        reg.add("delta.light_relaxations", light_relax)
        reg.add("delta.heavy_relaxations", heavy_relax)
        reg.add("delta.bucket_fusions", fusions)
        reg.add("delta.lazy_skips", lazy_skips)
        reg.gauge_max("delta.peak_bucket_index", float(len(buckets) - 1))
    return counts


def autotune_delta(
    graph: CSRGraph,
    *,
    max_sources: int = 4,
    candidates: Optional[Sequence[float]] = None,
) -> Tuple[float, List[CalibrationSample]]:
    """Pick Δ by probing a candidate ladder on a few real sweeps.

    Follows the calibrate idiom (:mod:`repro.core.calibrate`): each
    candidate is timed over the first ``max_sources`` sources and
    reported as a :class:`CalibrationSample`.  The *winner*, however, is
    chosen by the deterministic operation-count work measure
    (:meth:`~repro.types.OpCounts.total_work`), not wall seconds — the
    resolved Δ is therefore identical on every host, which keeps SIM
    smoke artifacts and :meth:`repro.serve.DistStore.repair` checksums
    reproducible.  Ties go to the earliest candidate.  Probes run with
    the metrics registry suppressed so they never pollute ``ops.*`` /
    ``delta.*`` counters (same contract as
    :func:`repro.core.batch.autotune_block_size`).
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("cannot autotune delta on an empty graph")
    weights = graph.weights
    if candidates is None:
        mean_w = float(weights.mean()) if weights.size else 1.0
        max_w = float(weights.max()) if weights.size else 1.0
        ladder = [mean_w * f for f in DELTA_AUTOTUNE_FACTORS] + [max_w]
        candidates = list(dict.fromkeys(c for c in ladder if c > 0)) or [1.0]
    if not candidates:
        raise ConfigError(
            "autotune_delta needs at least one candidate",
            field="algorithm.delta",
        )
    limit = max(1, min(int(max_sources), n))
    samples: List[CalibrationSample] = []
    best_delta = float(candidates[0])
    best_work: Optional[int] = None
    row = np.empty(n, dtype=np.float64)
    with _obs.use_registry(None):
        for cand in candidates:
            dg = DeltaGraph(graph, float(cand))
            total = OpCounts()
            t0 = time.perf_counter()
            for s in range(limit):
                total += delta_stepping_sssp(dg, s, row)
            samples.append(
                CalibrationSample(
                    total, time.perf_counter() - t0, calls=limit
                )
            )
            work = total.total_work()
            if best_work is None or work < best_work:
                best_work = work
                best_delta = float(cand)
    return best_delta, samples


def run_delta_sweep(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    delta: float,
    backend: "Backend | str" = Backend.SERIAL,
    num_threads: int = 1,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """The full Δ-stepping APSP sweep phase on a real backend.

    Mirrors :func:`repro.core.sweep.run_sweep`'s contract — ``order[i]``
    is the i-th source to issue, per-source counts are indexed by vertex
    id, and a worker death under ``on_worker_death="retry"`` re-runs
    exactly the lost rows (each sweep resets its own row, so recovery is
    bitwise for free).
    """
    backend = Backend.coerce(backend)
    schedule = Schedule.coerce(schedule)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise AlgorithmError(
            f"order must list all {n} sources, got shape {order.shape}"
        )
    if backend is Backend.SIM:
        raise BackendError("use simulate_delta_sweep for the SIM backend")
    dg = DeltaGraph(graph, delta)
    if backend is Backend.PROCESS and num_threads > 1 and fork_available():
        return _delta_sweep_process(
            dg,
            order,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
        )
    if backend is Backend.PROCESS:  # fell back to one in-process worker
        backend = Backend.SERIAL

    state = new_state(n)
    per_source: List[Optional[OpCounts]] = [None] * n

    def body(i: int, _thread: int) -> None:
        s = int(order[i])
        with _obs.span("sweep.source"):
            per_source[s] = delta_stepping_sssp(dg, s, state.dist[s])

    t0 = time.perf_counter()
    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        backend=backend,
        fault_plan=fault_plan,
        on_worker_death=on_worker_death,
        on_retry=_row_resetter(state, order, per_source),
    )
    elapsed = time.perf_counter() - t0
    counts = [c if c is not None else OpCounts() for c in per_source]
    return SweepOutcome(state.dist, counts, elapsed)


def _delta_sweep_process(
    dg: DeltaGraph,
    order: np.ndarray,
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """Shared-memory multiprocessing Δ-stepping sweep (rows as tasks)."""
    n = dg.n
    with SharedArray.allocate((n, n), np.float64) as shared_dist:
        state = APSPState(
            dist=shared_dist.array, flag=np.zeros(n, dtype=np.uint8)
        )
        state.reset()

        def work(i: int) -> Tuple[int, OpCounts]:
            s = int(order[i])
            counts = delta_stepping_sssp(dg, s, state.dist[s])
            return s, counts

        t0 = time.perf_counter()
        results = run_parallel_map(
            n,
            work,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
            on_retry=_row_resetter(state, order),
        )
        elapsed = time.perf_counter() - t0
        per_source: List[OpCounts] = [OpCounts() for _ in range(n)]
        for s, counts in results:
            per_source[s] = counts
        dist = shared_dist.array.copy()  # segment dies with the context
    return SweepOutcome(dist, per_source, elapsed)


class DeltaSimSweep:
    """Result bundle of a simulated Δ-stepping sweep phase.

    ``sim`` is the phase's full virtual timeline: the bucket-lock
    contention program (one representative source) followed by the
    per-source parfor, merged sequentially.
    """

    __slots__ = ("dist", "per_source", "outcome", "sim")

    def __init__(self, dist, per_source, outcome, sim) -> None:
        self.dist = dist
        self.per_source = per_source
        self.outcome = outcome
        self.sim = sim

    @property
    def makespan(self) -> float:
        return self.sim.makespan

    def total_ops(self) -> OpCounts:
        return OpCounts.sum(self.per_source)


def simulate_delta_sweep(
    graph: CSRGraph,
    order: np.ndarray,
    machine: MachineSpec,
    *,
    delta: float,
    num_threads: int,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
    trace: bool = False,
    fault_plan=None,
) -> DeltaSimSweep:
    """Play the Δ-stepping sweep phase on the simulated machine.

    Across sources the usual virtual parfor dispatches real sweeps and
    prices their op counts.  The *within-source* contention of a
    parallel Δ-stepping (T threads hammering a shared bucket array) is
    modelled once, on the first source in ``order``: its recorded
    insertion log is split into per-thread op streams, each insertion
    taking the target bucket's lock (ids folded onto a
    ``_SIM_BUCKET_LOCKS``-entry lock array, the usual fixed-size
    lock-striping implementation).  The lock program's named
    ``delta.bucket<i>`` events land in the merged timeline, so trace
    attribution can compare bucket contention against ParBuckets'
    ``parbuckets.bin<i>`` directly.  One representative source keeps the
    model's cost additive and small; the per-source parfor remains the
    dominant term, matching the algorithm's source-parallel deployment.
    """
    schedule = Schedule.coerce(schedule)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise AlgorithmError(
            f"order must list all {n} sources, got shape {order.shape}"
        )
    dg = DeltaGraph(graph, delta)
    T = machine.clamp_threads(num_threads)

    # --- representative-source bucket-lock program --------------------
    insert_log: List[int] = []
    if n:
        rep_row = np.empty(n, dtype=np.float64)
        with _obs.use_registry(None):  # probe: keep counters clean
            delta_stepping_sssp(
                dg, int(order[0]), rep_row, insert_log=insert_log
            )
    lock_sim = None
    if insert_log:
        num_locks = min(_SIM_BUCKET_LOCKS, max(insert_log) + 1)
        log = np.asarray(insert_log, dtype=np.int64)
        programs = [
            [
                Op(
                    work=cost_model.edge_relaxation,
                    lock_id=int(log[i]) % num_locks,
                    name="bucket-insert",
                )
                for i in block
            ]
            for block in block_assignment(log.size, T)
        ]
        lock_sim = run_lock_program(
            programs,
            machine,
            num_locks=num_locks,
            trace=trace,
            lock_names=[f"delta.bucket{b}" for b in range(num_locks)],
            region="delta.buckets",
        )

    # --- per-source virtual parfor ------------------------------------
    state = new_state(n)
    per_source: List[OpCounts] = [OpCounts() for _ in range(n)]
    multiplier = machine.memory_cost_multiplier(num_threads)

    def cost_fn(i: int, _dispatch: float, _thread: int) -> float:
        s = int(order[i])
        counts = delta_stepping_sssp(dg, s, state.dist[s])
        per_source[s] = counts
        return cost_model.sweep_cost(counts)

    from ..simx.parfor import simulate_parallel_for

    outcome = simulate_parallel_for(
        n,
        cost_fn,
        machine,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        cost_multiplier=multiplier,
        trace=trace,
        fault_plan=fault_plan,
    )
    sim = (
        lock_sim.merge_sequential(outcome.result)
        if lock_sim is not None
        else outcome.result
    )
    return DeltaSimSweep(state.dist, per_source, outcome, sim)


def _resolve_delta(graph: CSRGraph, cfg) -> float:
    knob = cfg.algorithm.delta
    if knob is None or knob == "auto":
        resolved, _samples = autotune_delta(graph)
        return resolved
    return float(knob)


def _solve_delta(graph: CSRGraph, cfg, spec: SolverSpec) -> APSPResult:
    """``spec.solve`` entry point for the registry."""
    backend = Backend(cfg.parallel.backend)
    sched = (
        Schedule(cfg.algorithm.schedule)
        if cfg.algorithm.schedule is not None
        else spec.schedule
    )
    ordering_name = (
        cfg.algorithm.ordering
        if cfg.algorithm.ordering is not None
        else spec.ordering
    )
    num_threads = cfg.parallel.num_threads
    cost_model = cfg.obs.cost_model
    n = graph.num_vertices
    resolved = _resolve_delta(graph, cfg)
    reg = _obs.get_registry()
    if reg is not None:
        reg.gauge_set("delta.delta", resolved)

    degrees = degree_array(graph, cfg.algorithm.degree_kind)
    ordering_kwargs = {}
    if ordering_name == "selection":
        ordering_kwargs["ratio"] = cfg.algorithm.ratio
        ordering_kwargs["fast"] = n > 4000

    if backend is Backend.SIM:
        mach = cfg.parallel.machine or default_machine(num_threads)
        with _obs.span("apsp.ordering"):
            order_result = simulate_order(
                ordering_name,
                degrees,
                mach,
                num_threads=num_threads,
                trace=cfg.obs.trace,
                **ordering_kwargs,
            )
        with _obs.span("apsp.dijkstra"):
            sweep = simulate_delta_sweep(
                graph,
                order_result.order,
                mach,
                delta=resolved,
                num_threads=num_threads,
                schedule=sched,
                chunk=cfg.parallel.chunk,
                cost_model=cost_model,
                trace=cfg.obs.trace,
                fault_plan=cfg.faults.plan,
            )
        ordering_time = (
            order_result.sim.makespan if order_result.sim is not None else 0.0
        )
        result = APSPResult(
            algorithm=spec.name,
            dist=sweep.dist,
            num_threads=num_threads,
            backend=backend.value,
            schedule=sched.value,
            order=order_result.order,
            ordering_method=order_result.method,
            phase_times=PhaseTimes(
                ordering=ordering_time, dijkstra=sweep.makespan
            ),
            ops=sweep.total_ops(),
            per_source_work=np.asarray(
                [cost_model.sweep_cost(c) for c in sweep.per_source]
            ),
            sim_ordering=order_result.sim,
            sim_dijkstra=sweep.sim,
            extra={"delta": resolved},
        )
        if reg is not None:
            for name, value in sweep.sim.as_metrics("sim.dijkstra").items():
                reg.gauge_set(name, value)
            if order_result.sim is not None:
                for name, value in order_result.sim.as_metrics(
                    "sim.ordering"
                ).items():
                    reg.gauge_set(name, value)
        return result

    # ---- real backends -----------------------------------------------
    t0 = time.perf_counter()
    with _obs.span("apsp.ordering"):
        order_result = compute_order(
            ordering_name,
            degrees,
            num_threads=num_threads,
            backend=(
                backend if backend is not Backend.PROCESS else Backend.SERIAL
            ),
            **ordering_kwargs,
        )
    ordering_seconds = time.perf_counter() - t0
    with _obs.span("apsp.dijkstra"):
        sweep = run_delta_sweep(
            graph,
            order_result.order,
            delta=resolved,
            backend=backend,
            num_threads=num_threads,
            schedule=sched,
            chunk=cfg.parallel.chunk,
            fault_plan=cfg.faults.plan,
            on_worker_death=cfg.faults.on_worker_death,
            timeout=cfg.faults.timeout,
            max_retries=cfg.faults.max_retries,
        )
    return APSPResult(
        algorithm=spec.name,
        dist=sweep.dist,
        num_threads=num_threads,
        backend=backend.value,
        schedule=sched.value,
        order=order_result.order,
        ordering_method=order_result.method,
        phase_times=PhaseTimes(
            ordering=ordering_seconds, dijkstra=sweep.elapsed_seconds
        ),
        ops=sweep.total_ops(),
        per_source_work=sweep.work_vector(cost_model),
        extra={"delta": resolved},
    )


def _delta_shard_hooks(graph: CSRGraph, cfg) -> ShardHooks:
    """Shard-streaming participation: one Δ-stepping row per source.

    Δ is resolved once per generator (the autotuner is deterministic in
    op counts, so a :meth:`repro.serve.DistStore.repair` re-solve lands
    on the same Δ and reproduces shard checksums exactly).
    """
    resolved = _resolve_delta(graph, cfg)
    dg = DeltaGraph(graph, resolved)

    def sweep_row(g, source, state, cfg):
        return delta_stepping_sssp(dg, int(source), state.dist[source])

    return ShardHooks(graph, sweep_row)


register_solver(
    SolverSpec(
        name="delta-stepping",
        ordering="none",
        schedule=Schedule.DYNAMIC,
        parallel=True,
        description="Δ-stepping per source: bucketed frontier with "
        "light/heavy split, bucket fusion and lazy bucket updates",
        negative_weights=False,
        batchable=False,
        simulatable=True,
        store_buildable=True,
        uses_flags=False,
        uses_delta=True,
        solve=_solve_delta,
        shard_hooks=_delta_shard_hooks,
    )
)
