"""Cost model: operation counts → virtual work units.

The simulator prices one SSSP sweep from the operation counters the
real implementation reports.  Constants are per *logical* operation —
a queue pop, one attempted edge relaxation, one element comparison of a
row merge — so they are independent of how the Python/numpy
implementation batches the work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import OpCounts

__all__ = ["DijkstraCostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class DijkstraCostModel:
    """Per-operation costs of the modified Dijkstra (work units)."""

    #: dequeue + flag test + loop bookkeeping
    pop: float = 3.0
    #: one attempted edge relaxation (load weight, compare, maybe store)
    edge_relaxation: float = 4.0
    #: one element of a row merge (load, add, compare, maybe store)
    merge_comparison: float = 1.0
    #: fixed overhead per merge (row addressing, prune branch)
    row_merge: float = 10.0
    #: fixed overhead per SSSP call (queue setup, source row init)
    call: float = 60.0

    def sweep_cost(self, counts: OpCounts) -> float:
        """Virtual duration of one SSSP sweep."""
        return (
            self.call
            + self.pop * counts.pops
            + self.edge_relaxation * counts.edge_relaxations
            + self.merge_comparison * counts.merge_comparisons
            + self.row_merge * counts.row_merges
        )


DEFAULT_COST_MODEL = DijkstraCostModel()
