"""**ParAPSP** — Algorithm 8: the paper's proposed parallel APSP solver.

MultiLists parallel ordering (lock-free, exact descending degree) plus
the dynamic-cyclic scheduled modified-Dijkstra sweep.  Removing the
O(n²) sequential ordering is what turns ParAlg2's Amdahl-limited
speedup into the near/hyper-linear curves of Figures 9–10.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.csr import CSRGraph
from ..obs import metrics as _obs
from ..simx.machine import MachineSpec
from ..types import Backend, Schedule
from .state import APSPResult
from .runner import solve_apsp

__all__ = ["par_apsp"]


def par_apsp(
    graph: CSRGraph,
    *,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.THREADS,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    machine: Optional[MachineSpec] = None,
    queue: str = "fifo",
    block_size: "int | str | None" = None,
    kernel: str = "auto",
) -> APSPResult:
    """Run ParAPSP (the paper's headline algorithm).

    ``block_size`` / ``kernel`` route the sweep through the batched
    engine (see :func:`repro.core.runner.solve_apsp`).
    """
    with _obs.span("par_apsp"):
        return solve_apsp(
            graph,
            algorithm="parapsp",
            num_threads=num_threads,
            backend=backend,
            schedule=schedule,
            machine=machine,
            queue=queue,
            block_size=block_size,
            kernel=kernel,
        )
