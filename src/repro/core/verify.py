"""Self-contained APSP result verification (no scipy required).

Downstream users of the library need a cheap way to convince themselves
a distance matrix is right without installing the reference stack.
A full check would be another APSP solve, so :func:`verify_apsp`
combines complete *local* checks with sampled *global* ones:

1. **diagonal**: ``D[v, v] == 0``;
2. **edge consistency** (complete): for every arc (u, v, w) and every
   source s, ``D[s, v] ≤ D[s, u] + w`` — the fixpoint condition of all
   shortest-path algorithms, vectorised to O(n·m);
3. **realisability** (sampled): for sampled pairs with finite
   ``D[s, t]`` there must exist a neighbour u of t with
   ``D[s, t] == D[s, u] + w(u, t)`` — every claimed distance is
   witnessed by an actual incoming arc;
4. **symmetry** for undirected graphs (complete).

Conditions 1–3 together are exactly the Bellman optimality conditions:
any matrix satisfying them *is* the shortest-path matrix.  Condition 3
is sampled for speed (its full version is O(n·m) too but constant-heavy
in Python); ``sample=None`` runs it completely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ValidationError
from ..graphs.csr import CSRGraph

__all__ = ["verify_apsp"]


def verify_apsp(
    graph: CSRGraph,
    dist: np.ndarray,
    *,
    sample: Optional[int] = 64,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`ValidationError` unless ``dist`` is a plausible —
    and for the checked conditions, provably consistent — APSP matrix
    of ``graph``."""
    n = graph.num_vertices
    dist = np.asarray(dist)
    if dist.shape != (n, n):
        raise ValidationError(
            f"distance matrix shape {dist.shape} != ({n}, {n})"
        )
    if n == 0:
        return
    if not np.all(np.diag(dist) == 0.0):
        raise ValidationError("diagonal must be exactly zero")
    if np.isnan(dist).any():
        raise ValidationError("distance matrix contains NaN")
    finite = np.isfinite(dist)
    if (dist[finite] < 0).any():
        raise ValidationError("negative distances with positive weights")

    # --- condition 2: no arc can improve any distance (vectorised) -----
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    w = graph.weights
    # D[:, dst] vs D[:, src] + w — broadcast over all sources at once
    lhs = dist[:, dst]
    rhs = dist[:, src] + w[None, :]
    viol = lhs > rhs * (1 + rtol) + atol
    if viol.any():
        s, k = np.unravel_index(int(np.argmax(viol)), viol.shape)
        raise ValidationError(
            f"arc ({src[k]}, {dst[k]}, {w[k]:g}) improves "
            f"D[{s}, {dst[k]}]: {lhs[s, k]:g} > {rhs[s, k]:g} — "
            "matrix is not a relaxation fixpoint"
        )

    # --- reachability consistency: finite D[s,t] needs t reachable ------
    # (condition 3 witnesses): every finite off-diagonal distance must
    # be witnessed by an incoming arc achieving it exactly
    rng = np.random.default_rng(0)
    sources = (
        np.arange(n)
        if sample is None
        else rng.choice(n, size=min(sample, n), replace=False)
    )
    rev = graph.reverse() if graph.directed else graph
    for s in sources:
        row = dist[int(s)]
        targets = np.flatnonzero(np.isfinite(row))
        for t in targets:
            if t == s:
                continue
            in_nbrs = rev.neighbors(int(t))
            in_wts = rev.neighbor_weights(int(t))
            if in_nbrs.size == 0:
                raise ValidationError(
                    f"D[{s}, {t}] = {row[t]:g} is finite but {t} has no "
                    "incoming arcs"
                )
            best = (row[in_nbrs] + in_wts).min()
            if not np.isclose(row[t], best, rtol=rtol, atol=atol):
                raise ValidationError(
                    f"D[{s}, {t}] = {row[t]:g} has no witnessing arc "
                    f"(best incoming gives {best:g})"
                )

    # --- symmetry for undirected graphs ---------------------------------
    if not graph.directed:
        if not np.allclose(
            np.where(finite, dist, -1.0),
            np.where(finite.T, dist.T, -1.0),
            rtol=rtol,
            atol=atol,
        ):
            raise ValidationError(
                "undirected graph but asymmetric distance matrix"
            )
