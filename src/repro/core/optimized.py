"""Algorithm 3 — the sequential *optimized* APSP algorithm.

Identical to the basic algorithm except the sources are issued in
descending-degree order (computed by the original O(n²) partial
selection sort with ratio ``r``).  High-degree hubs finish first, their
rows are reused by almost every later sweep, and the paper reports a
2–4× end-to-end win over the basic algorithm.
"""

from __future__ import annotations

from ..graphs.csr import CSRGraph
from ..graphs.degree import DegreeKind
from ..types import Backend
from .state import APSPResult
from .runner import solve_apsp

__all__ = ["seq_optimized"]


def seq_optimized(
    graph: CSRGraph,
    *,
    ratio: float = 1.0,
    queue: str = "fifo",
    degree_kind: "DegreeKind | str" = DegreeKind.OUT,
) -> APSPResult:
    """Run the optimized APSP algorithm sequentially (Algorithm 3).

    ``ratio`` is the paper's ``r`` — the fraction of positions the
    selection sort actually orders.
    """
    return solve_apsp(
        graph,
        algorithm="seq-opt",
        backend=Backend.SERIAL,
        ratio=ratio,
        queue=queue,
        degree_kind=degree_kind,
    )
