"""Algorithm 2 — the sequential *basic* APSP algorithm.

Initialise D and flag, then run the modified Dijkstra from every vertex
in index order.  Every later sweep reuses the rows finished before it,
which is what drops the empirical complexity to ≈O(n^2.4) on scale-free
graphs (Peng et al.'s measurement, re-checked by
``benchmarks/bench_complexity_exponent.py``).
"""

from __future__ import annotations

from ..graphs.csr import CSRGraph
from ..types import Backend
from .state import APSPResult
from .runner import solve_apsp

__all__ = ["seq_basic"]


def seq_basic(graph: CSRGraph, *, queue: str = "fifo") -> APSPResult:
    """Run the basic APSP algorithm sequentially (Algorithm 2)."""
    return solve_apsp(
        graph, algorithm="seq-basic", backend=Backend.SERIAL, queue=queue
    )
