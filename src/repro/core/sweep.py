"""The iterative-Dijkstra phase: n SSSP sweeps in a given source order.

This module is the engine behind ParAlg1/ParAlg2/ParAPSP's main loop
(Algorithm 4 / Algorithm 8 lines 4–8) on the *real* execution backends.
The simulated counterpart lives in :mod:`repro.core.simulate`.

Two execution strategies are available:

* **unbatched** (``block_size=None``, the default) — one
  ``modified_dijkstra_sssp`` call per source, row kernels;
* **batched** (``block_size=B`` or ``"auto"``) — sources are processed
  in blocks of B by the lockstep engine of :mod:`repro.core.batch`,
  which replaces per-source row operations with blocked min-plus /
  concatenated-CSR kernels.  Distances and per-source ``OpCounts`` are
  bitwise-identical to the unbatched path (strictly guaranteed for
  deterministic single-worker runs; see the batch module docstring).

Concurrency notes (threads backend): every sweep writes only its own
row of the distance matrix; rows of *other* sources are only read after
their ``flag`` was observed set, and a flag is set strictly after its
row's final write (program order under the GIL).  A reader that misses
a freshly-set flag merely forgoes a reuse opportunity — the output is
exact either way, which is the paper's §5 claim and is asserted
bitwise in the test suite.

Process backend: the matrix and the flag vector live in
``multiprocessing.shared_memory``; workers inherit the mapping via
fork.  Flags are single bytes, so torn reads are impossible; x86-TSO
(and the CPython interpreter's own synchronisation) preserve the
row-then-flag write order.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import AlgorithmError, BackendError
from ..graphs.csr import CSRGraph
from ..parallel import Backend, Schedule, parallel_for
from ..parallel.backends.process import SharedArray, fork_available, run_parallel_map
from ..obs import metrics as _obs
from ..types import INF, OpCounts
from .batch import resolve_block_size, run_block
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .kernels import resolve_kernel
from .modified_dijkstra import modified_dijkstra_sssp
from .state import APSPState, new_state

__all__ = ["SweepOutcome", "run_sweep"]


class SweepOutcome:
    """Distance matrix + per-source op accounting of one sweep phase."""

    __slots__ = ("dist", "per_source", "elapsed_seconds", "block_size")

    def __init__(
        self,
        dist: np.ndarray,
        per_source: List[OpCounts],
        elapsed_seconds: float,
        block_size: Optional[int] = None,
    ) -> None:
        self.dist = dist
        self.per_source = per_source
        self.elapsed_seconds = elapsed_seconds
        #: resolved batching block size (None = unbatched)
        self.block_size = block_size

    def total_ops(self) -> OpCounts:
        return OpCounts.sum(self.per_source)

    def work_vector(
        self, model: DijkstraCostModel = DEFAULT_COST_MODEL
    ) -> np.ndarray:
        return np.asarray(
            [model.sweep_cost(c) for c in self.per_source], dtype=np.float64
        )


def run_sweep(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    backend: "Backend | str" = Backend.SERIAL,
    num_threads: int = 1,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    queue: str = "fifo",
    use_flags: bool = True,
    block_size: "int | str | None" = None,
    kernel: str = "auto",
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """Run the full APSP sweep phase on a real backend.

    ``order[i]`` is the i-th source to issue (Algorithm 8 line 6–7).
    Returns per-source counts indexed by *vertex id* (not position).

    ``block_size`` switches to the batched lockstep engine: an int is
    used directly, ``"auto"`` runs the calibrate-style block-size
    tuner, ``None`` keeps the unbatched per-source path.  ``kernel``
    picks the blocked-kernel implementation (``"auto"``, ``"row"``,
    ``"blocked"``, ``"scipy"``) and only matters when batching.

    Crash recovery: under ``on_worker_death="retry"`` a lost source (or
    source block) has its distance row(s) reset to the fresh-sweep state
    — INF everywhere, 0 on the diagonal, flag cleared — before being
    re-run, which yields the bitwise-identical exact matrix (flags are
    only ever set after a row is final, so no other sweep can have read
    the partial row).  ``fault_plan`` injects deterministic faults and
    ``timeout`` / ``max_retries`` bound each process round — see
    :mod:`repro.faults`.
    """
    backend = Backend.coerce(backend)
    schedule = Schedule.coerce(schedule)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise AlgorithmError(
            f"order must list all {n} sources, got shape {order.shape}"
        )
    if chunk < 1:
        raise AlgorithmError(
            f"chunk must be >= 1, got {chunk} (a non-positive chunk "
            "would make dynamic workers spin forever)"
        )
    if backend is Backend.SIM:
        raise BackendError("use repro.core.simulate for the SIM backend")
    resolved_block = resolve_block_size(block_size, n, kernel=kernel)
    if resolved_block is not None:
        return _sweep_batched(
            graph,
            order,
            backend=backend,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            block_size=resolved_block,
            kernel=kernel,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
        )
    if backend is Backend.PROCESS:
        return _sweep_process(
            graph,
            order,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
        )

    state = new_state(n)
    per_source: List[Optional[OpCounts]] = [None] * n

    def body(i: int, _thread: int) -> None:
        s = int(order[i])
        with _obs.span("sweep.source"):
            per_source[s] = modified_dijkstra_sssp(
                graph, s, state, queue=queue, use_flags=use_flags
            )

    t0 = time.perf_counter()
    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        backend=backend,
        fault_plan=fault_plan,
        on_worker_death=on_worker_death,
        on_retry=_row_resetter(state, order, per_source),
    )
    elapsed = time.perf_counter() - t0
    counts = [c if c is not None else OpCounts() for c in per_source]
    return SweepOutcome(state.dist, counts, elapsed)


def _row_resetter(state: APSPState, order: np.ndarray, per_source=None):
    """Recovery hook: return fresh-sweep state to lost sources.

    ``indices`` are loop positions; each maps to a source whose row may
    be half-written by a dead worker.  A row reset mirrors
    :meth:`APSPState.reset` for that single source, after which re-running
    the sweep produces the exact row again (shortest-path distances are
    unique, so recovery is bitwise).
    """

    def reset(indices: List[int]) -> None:
        for i in indices:
            s = int(order[i])
            state.dist[s, :] = INF
            state.dist[s, s] = 0.0
            state.flag[s] = 0
            if per_source is not None:
                per_source[s] = None

    return reset


def _block_resetter(
    state: APSPState, order: np.ndarray, block_size: int, per_source=None
):
    """Like :func:`_row_resetter`, for batched sweeps (blocks as tasks)."""

    def reset(blocks: List[int]) -> None:
        for b in blocks:
            for s in order[b * block_size:(b + 1) * block_size]:
                s = int(s)
                state.dist[s, :] = INF
                state.dist[s, s] = 0.0
                state.flag[s] = 0
                if per_source is not None:
                    per_source[s] = None

    return reset


def _sweep_process(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    queue: str,
    use_flags: bool,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """Shared-memory multiprocessing sweep.

    The distance matrix and flag vector are allocated in shared memory
    *before* forking, so every worker mutates the same physical pages;
    per-source op counts travel back through the result pipe.  A killed
    worker may leave half-written rows in the shared matrix — the
    recovery hook resets exactly those rows before the lost sources are
    re-swept, so the retried matrix is bitwise-identical.
    """
    n = graph.num_vertices
    if num_threads <= 1 or not fork_available():
        return run_sweep(
            graph,
            order,
            backend=Backend.SERIAL,
            num_threads=1,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
        )
    with SharedArray.allocate((n, n), np.float64) as shared_dist, \
            SharedArray.allocate((n,), np.uint8) as shared_flag:
        state = APSPState(dist=shared_dist.array, flag=shared_flag.array)
        state.reset()

        def work(i: int) -> Tuple[int, OpCounts]:
            s = int(order[i])
            counts = modified_dijkstra_sssp(
                graph, s, state, queue=queue, use_flags=use_flags
            )
            return s, counts

        t0 = time.perf_counter()
        results = run_parallel_map(
            n,
            work,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
            on_retry=_row_resetter(state, order),
        )
        elapsed = time.perf_counter() - t0
        per_source: List[OpCounts] = [OpCounts() for _ in range(n)]
        for s, counts in results:
            per_source[s] = counts
        dist = shared_dist.array.copy()  # segment dies with the context
    return SweepOutcome(dist, per_source, elapsed)


def _sweep_batched(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    backend: Backend,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    queue: str,
    use_flags: bool,
    block_size: int,
    kernel: str,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """Batched sweep: blocks of sources through the lockstep engine.

    Blocks are the scheduling unit — ``order`` is cut into
    ``ceil(n / B)`` contiguous blocks which the chosen backend
    dispatches exactly like it would dispatch single sources.  With one
    worker the blocks run in issue order and the engine's strict mode
    reproduces the sequential sweep bit-for-bit; with several workers
    flags are read opportunistically (racy mode), like the unbatched
    concurrent sweep.
    """
    n = graph.num_vertices
    positions = np.empty(n, dtype=np.int64)
    positions[order] = np.arange(n, dtype=np.int64)
    num_blocks = -(-n // block_size) if n else 0
    kern = resolve_kernel(kernel)
    reg = _obs.get_registry()
    if reg is not None:
        reg.gauge_set("kernel.batch.block_size", block_size)

    if backend is Backend.PROCESS and num_threads > 1 and fork_available():
        return _sweep_batched_process(
            graph,
            order,
            positions,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            block_size=block_size,
            kernel=kernel,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
        )

    state = new_state(n)
    per_source: List[Optional[OpCounts]] = [None] * n
    strict = backend is Backend.SERIAL or num_threads <= 1 \
        or backend is Backend.PROCESS  # process fell back to one worker

    def body(b: int, _thread: int) -> None:
        block = order[b * block_size:(b + 1) * block_size]
        with _obs.span("sweep.block"):
            got = run_block(
                graph,
                state,
                block,
                positions,
                queue=queue,
                use_flags=use_flags,
                strict=strict,
                kernel=kern,
            )
        for s, counts in got.items():
            per_source[s] = counts

    t0 = time.perf_counter()
    parallel_for(
        num_blocks,
        body,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        backend=(
            Backend.SERIAL if backend is Backend.PROCESS else backend
        ),
        fault_plan=fault_plan,
        on_worker_death=on_worker_death,
        on_retry=_block_resetter(state, order, block_size, per_source),
    )
    elapsed = time.perf_counter() - t0
    counts = [c if c is not None else OpCounts() for c in per_source]
    return SweepOutcome(state.dist, counts, elapsed, block_size)


def _sweep_batched_process(
    graph: CSRGraph,
    order: np.ndarray,
    positions: np.ndarray,
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    queue: str,
    use_flags: bool,
    block_size: int,
    kernel: str,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> SweepOutcome:
    """Shared-memory multiprocessing batched sweep (blocks as tasks).

    A lost source block is recovered by resetting its rows in the
    shared matrix and re-running the block — bitwise-identical output,
    same argument as the unbatched process sweep.
    """
    n = graph.num_vertices
    num_blocks = -(-n // block_size)
    with SharedArray.allocate((n, n), np.float64) as shared_dist, \
            SharedArray.allocate((n,), np.uint8) as shared_flag:
        state = APSPState(dist=shared_dist.array, flag=shared_flag.array)
        state.reset()

        def work(b: int) -> List[Tuple[int, OpCounts]]:
            block = order[b * block_size:(b + 1) * block_size]
            got = run_block(
                graph,
                state,
                block,
                positions,
                queue=queue,
                use_flags=use_flags,
                strict=False,
                kernel=kernel,
            )
            return list(got.items())

        t0 = time.perf_counter()
        results = run_parallel_map(
            num_blocks,
            work,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
            on_retry=_block_resetter(state, order, block_size),
        )
        elapsed = time.perf_counter() - t0
        per_source: List[OpCounts] = [OpCounts() for _ in range(n)]
        for items in results:
            for s, counts in items:
                per_source[s] = counts
        dist = shared_dist.array.copy()  # segment dies with the context
    return SweepOutcome(dist, per_source, elapsed, block_size)
