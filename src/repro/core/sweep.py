"""The iterative-Dijkstra phase: n SSSP sweeps in a given source order.

This module is the engine behind ParAlg1/ParAlg2/ParAPSP's main loop
(Algorithm 4 / Algorithm 8 lines 4–8) on the *real* execution backends.
The simulated counterpart lives in :mod:`repro.core.simulate`.

Concurrency notes (threads backend): every sweep writes only its own
row of the distance matrix; rows of *other* sources are only read after
their ``flag`` was observed set, and a flag is set strictly after its
row's final write (program order under the GIL).  A reader that misses
a freshly-set flag merely forgoes a reuse opportunity — the output is
exact either way, which is the paper's §5 claim and is asserted
bitwise in the test suite.

Process backend: the matrix and the flag vector live in
``multiprocessing.shared_memory``; workers inherit the mapping via
fork.  Flags are single bytes, so torn reads are impossible; x86-TSO
(and the CPython interpreter's own synchronisation) preserve the
row-then-flag write order.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import AlgorithmError, BackendError
from ..graphs.csr import CSRGraph
from ..parallel import Backend, Schedule, parallel_for
from ..parallel.backends.process import SharedArray, fork_available, run_parallel_map
from ..types import OpCounts
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .modified_dijkstra import modified_dijkstra_sssp
from .state import APSPState, new_state

__all__ = ["SweepOutcome", "run_sweep"]


class SweepOutcome:
    """Distance matrix + per-source op accounting of one sweep phase."""

    __slots__ = ("dist", "per_source", "elapsed_seconds")

    def __init__(
        self,
        dist: np.ndarray,
        per_source: List[OpCounts],
        elapsed_seconds: float,
    ) -> None:
        self.dist = dist
        self.per_source = per_source
        self.elapsed_seconds = elapsed_seconds

    def total_ops(self) -> OpCounts:
        total = OpCounts()
        for c in self.per_source:
            total += c
        return total

    def work_vector(
        self, model: DijkstraCostModel = DEFAULT_COST_MODEL
    ) -> np.ndarray:
        return np.asarray(
            [model.sweep_cost(c) for c in self.per_source], dtype=np.float64
        )


def run_sweep(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    backend: "Backend | str" = Backend.SERIAL,
    num_threads: int = 1,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    queue: str = "fifo",
    use_flags: bool = True,
) -> SweepOutcome:
    """Run the full APSP sweep phase on a real backend.

    ``order[i]`` is the i-th source to issue (Algorithm 8 line 6–7).
    Returns per-source counts indexed by *vertex id* (not position).
    """
    backend = Backend.coerce(backend)
    schedule = Schedule.coerce(schedule)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise AlgorithmError(
            f"order must list all {n} sources, got shape {order.shape}"
        )
    if backend is Backend.SIM:
        raise BackendError("use repro.core.simulate for the SIM backend")
    if backend is Backend.PROCESS:
        return _sweep_process(
            graph,
            order,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
        )

    state = new_state(n)
    per_source: List[Optional[OpCounts]] = [None] * n

    def body(i: int, _thread: int) -> None:
        s = int(order[i])
        per_source[s] = modified_dijkstra_sssp(
            graph, s, state, queue=queue, use_flags=use_flags
        )

    t0 = time.perf_counter()
    parallel_for(
        n,
        body,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        backend=backend,
    )
    elapsed = time.perf_counter() - t0
    counts = [c if c is not None else OpCounts() for c in per_source]
    return SweepOutcome(state.dist, counts, elapsed)


def _sweep_process(
    graph: CSRGraph,
    order: np.ndarray,
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    queue: str,
    use_flags: bool,
) -> SweepOutcome:
    """Shared-memory multiprocessing sweep.

    The distance matrix and flag vector are allocated in shared memory
    *before* forking, so every worker mutates the same physical pages;
    per-source op counts travel back through the result pipe.
    """
    n = graph.num_vertices
    if num_threads <= 1 or not fork_available():
        return run_sweep(
            graph,
            order,
            backend=Backend.SERIAL,
            num_threads=1,
            schedule=schedule,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
        )
    with SharedArray.allocate((n, n), np.float64) as shared_dist, \
            SharedArray.allocate((n,), np.uint8) as shared_flag:
        state = APSPState(dist=shared_dist.array, flag=shared_flag.array)
        state.reset()

        def work(i: int) -> Tuple[int, OpCounts]:
            s = int(order[i])
            counts = modified_dijkstra_sssp(
                graph, s, state, queue=queue, use_flags=use_flags
            )
            return s, counts

        t0 = time.perf_counter()
        results = run_parallel_map(
            n, work, num_threads=num_threads, schedule=schedule, chunk=chunk
        )
        elapsed = time.perf_counter() - t0
        per_source: List[OpCounts] = [OpCounts() for _ in range(n)]
        for s, counts in results:
            per_source[s] = counts
        dist = shared_dist.array.copy()  # segment dies with the context
    return SweepOutcome(dist, per_source, elapsed)
