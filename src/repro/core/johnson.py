"""Johnson's algorithm as a registered APSP solver.

Johnson (1977) extends the Dijkstra-family APSP to graphs with negative
arc weights: a Bellman–Ford pass from a virtual super-source computes a
potential ``h[v]`` per vertex, every arc is reweighted to
``w'(u,v) = w(u,v) + h[u] - h[v] ≥ 0``, and the all-pairs phase runs
plain non-negative sweeps on the reweighted graph; true distances come
back via ``D[s,v] = D'[s,v] - h[s] + h[v]``.  A negative cycle makes
the potentials unbounded — the Bellman–Ford phase detects it (an
improvement on the n-th pass) and raises
:class:`~repro.exceptions.NegativeCycleError`.

The APSP phase is *exactly* the paper's sweep pipeline run on the inner
graph: every source is independent, so the batched lockstep engine, the
process backend, the SIM machine model and the fault-injection retry
paths all ride along unchanged, and Algorithm 1's flag reuse stays
valid (rows of the reweighted graph merge in reweighted space; the
un-reweighting happens once at the end).

On a graph with no negative arcs the potentials are identically zero —
the virtual super-source reaches every vertex at cost 0 and no
non-negative arc can improve on that — so the inner graph *is* the
input graph, nothing is un-reweighted, and Johnson's output is
bitwise identical to the sweep family's.  The cross-solver parity suite
asserts exactly that.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from ..exceptions import NegativeCycleError
from ..graphs.csr import CSRGraph
from ..obs import metrics as _obs
from ..types import INF, Backend, Schedule, VERTEX_DTYPE
from .modified_dijkstra import modified_dijkstra_sssp
from .registry import ShardHooks, SolverSpec, register_solver
from .state import APSPResult

__all__ = [
    "bellman_ford_potentials",
    "bellman_ford_sssp",
    "bellman_ford_apsp",
    "reweight_graph",
]


def _arc_sources(graph: CSRGraph) -> np.ndarray:
    return np.repeat(
        np.arange(graph.num_vertices, dtype=VERTEX_DTYPE),
        np.diff(graph.indptr),
    )


def bellman_ford_potentials(
    graph: CSRGraph,
) -> Tuple[np.ndarray, int, int]:
    """Johnson potentials via vectorized Bellman–Ford.

    Starting from the all-zero vector (equivalent to one relaxation
    round from the virtual super-source wired to every vertex at cost
    0), each pass relaxes *all* arcs with one scatter-min; at the
    fixpoint ``h[v] ≤ h[u] + w(u,v)`` holds exactly for every arc.  An
    improvement still possible on the n-th pass proves a negative cycle
    and raises :class:`~repro.exceptions.NegativeCycleError` with a
    witness vertex.

    Returns ``(h, passes, relaxations)`` — potentials (always finite),
    relaxation passes run, and total arcs scanned (the virtual-time
    cost of the phase).
    """
    n = graph.num_vertices
    src = _arc_sources(graph)
    dst = graph.indices
    w = graph.weights
    h = np.zeros(n, dtype=np.float64)
    relaxations = 0
    for passes in range(1, n + 1):
        h_new = h.copy()
        np.minimum.at(h_new, dst, h[src] + w)
        relaxations += int(w.size)
        if np.array_equal(h_new, h):
            return h, passes, relaxations
        if passes == n:
            witness = int(np.nonzero(h_new != h)[0][0])
            raise NegativeCycleError(
                "graph contains a negative-weight cycle (Bellman–Ford "
                f"still improving vertex {witness} after {n} passes); "
                "shortest-path distances are undefined",
                witness=witness,
            )
        h = h_new
    return h, 0, relaxations  # n == 0: nothing to do


def bellman_ford_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference single-source Bellman–Ford (negative weights allowed).

    O(n·m) and unvectorized across sources — this is the *oracle* the
    parity property suite checks Johnson against, not a production
    solver.  Raises :class:`~repro.exceptions.NegativeCycleError` when
    a negative cycle is reachable from ``source``.
    """
    n = graph.num_vertices
    src = _arc_sources(graph)
    dst = graph.indices
    w = graph.weights
    dist = np.full(n, INF)
    dist[source] = 0.0
    for passes in range(1, n + 1):
        new = dist.copy()
        np.minimum.at(new, dst, dist[src] + w)
        if np.array_equal(new, dist):
            return dist
        if passes == n:
            witness = int(np.nonzero(new != dist)[0][0])
            raise NegativeCycleError(
                "negative-weight cycle reachable from source "
                f"{source} (witness vertex {witness})",
                witness=witness,
            )
        dist = new
    return dist


def bellman_ford_apsp(graph: CSRGraph) -> np.ndarray:
    """Reference APSP matrix by n independent Bellman–Ford runs."""
    n = graph.num_vertices
    out = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        out[s] = bellman_ford_sssp(graph, s)
    return out


def reweight_graph(graph: CSRGraph, h: np.ndarray) -> CSRGraph:
    """The non-negative inner graph ``w' = (w + h[u]) - h[v]``.

    The subtraction order matters: at the Bellman–Ford fixpoint
    ``h[v] <= h[u] + w`` holds as an exact float comparison, so
    computing ``(w + h[u]) - h[v]`` — the very same intermediate the
    fixpoint compared — is ``>= 0`` in IEEE arithmetic, never a tiny
    negative.  Zero weights are possible and fine for the sweeps.
    """
    src = _arc_sources(graph)
    weights = (graph.weights + h[src]) - h[graph.indices]
    return CSRGraph(
        graph.indptr.copy(),
        graph.indices.copy(),
        weights,
        directed=graph.directed,
        name=graph.name and f"{graph.name}:reweighted",
        allow_negative=True,  # zeros allowed; strict negatives impossible
    )


def _emit_bf_metrics(passes: int, relaxations: int, reweighted: bool) -> None:
    reg = _obs.get_registry()
    if reg is not None:
        reg.add("johnson.bf.passes", passes)
        reg.add("johnson.bf.relaxations", relaxations)
        reg.gauge_set("johnson.reweighted", 1.0 if reweighted else 0.0)


def _solve_johnson(graph: CSRGraph, cfg, spec: SolverSpec) -> APSPResult:
    """``spec.solve`` entry point: potentials, inner sweep, un-reweight.

    The inner APSP delegates to the sweep family's solve path with this
    spec, so ``johnson`` honours every pipeline knob (ordering,
    schedule, backend, batching, faults) exactly like ``parapsp`` does.
    """
    from .runner import _solve_sweep_family

    backend = Backend(cfg.parallel.backend)
    with _obs.span("apsp.reweight"):
        t0 = time.perf_counter()
        h, passes, relaxations = bellman_ford_potentials(graph)
        bf_seconds = time.perf_counter() - t0
        reweighted = bool(np.any(h != 0.0))
        inner = reweight_graph(graph, h) if reweighted else graph
    _emit_bf_metrics(passes, relaxations, reweighted)

    result = _solve_sweep_family(inner, cfg, spec)

    if reweighted:
        # D[s, v] = D'[s, v] - h[s] + h[v]; INF rows stay INF (h finite)
        result.dist += h[None, :] - h[:, None]
    if backend is Backend.SIM:
        # deterministic virtual cost of the Bellman–Ford phase
        bf_cost = relaxations * cfg.obs.cost_model.edge_relaxation
    else:
        bf_cost = bf_seconds
    result.phase_times.other += bf_cost
    result.extra["johnson.bf_passes"] = float(passes)
    result.extra["johnson.reweighted"] = 1.0 if reweighted else 0.0
    return result


def _johnson_shard_hooks(graph: CSRGraph, cfg) -> ShardHooks:
    """Shard-streaming participation: sweeps run in reweighted space,
    each completed block is un-reweighted in place before it is yielded.

    The potentials are a pure function of the graph, so a
    :meth:`repro.serve.DistStore.repair` re-solve reproduces shard
    bytes exactly.
    """
    h, passes, relaxations = bellman_ford_potentials(graph)
    reweighted = bool(np.any(h != 0.0))
    inner = reweight_graph(graph, h) if reweighted else graph
    _emit_bf_metrics(passes, relaxations, reweighted)

    def sweep_row(g, source, state, cfg):
        return modified_dijkstra_sssp(
            g,
            int(source),
            state,
            queue=cfg.algorithm.queue,
            use_flags=cfg.algorithm.use_flags,
        )

    finalize = None
    if reweighted:
        def finalize(start: int, block: np.ndarray) -> None:
            k = block.shape[0]
            block += h[None, :] - h[start:start + k, None]

    return ShardHooks(inner, sweep_row, finalize)


register_solver(
    SolverSpec(
        name="johnson",
        ordering="multilists",
        schedule=Schedule.DYNAMIC,
        parallel=True,
        description="Johnson: Bellman–Ford reweight to non-negative, "
        "then the ParAPSP sweep pipeline per source",
        negative_weights=True,
        batchable=True,
        simulatable=True,
        store_buildable=True,
        uses_flags=True,
        uses_delta=False,
        solve=_solve_johnson,
        shard_hooks=_johnson_shard_hooks,
    )
)
