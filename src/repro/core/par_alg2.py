"""**ParAlg2** — Algorithm 4: the parallel optimized APSP algorithm.

Sequential selection-sort ordering (kept verbatim from Peng et al., with
its O(n²) cost — the parallel overhead Table 1 quantifies) followed by
the dynamic-cyclic scheduled sweep.  ``schedule`` is exposed because
Figure 1 studies exactly that knob: the dynamic-cyclic scheme preserves
the descending-degree issue order; block partitioning destroys it.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.csr import CSRGraph
from ..simx.machine import MachineSpec
from ..types import Backend, Schedule
from .state import APSPResult
from .runner import solve_apsp

__all__ = ["par_alg2"]


def par_alg2(
    graph: CSRGraph,
    *,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.THREADS,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    ordering: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
    ratio: float = 1.0,
    queue: str = "fifo",
    block_size: "int | str | None" = None,
    kernel: str = "auto",
) -> APSPResult:
    """Run ParAlg2 with ``num_threads`` workers.

    ``ordering`` may swap in ``"parbuckets"`` / ``"parmax"`` — the
    Figure 5 experiment (effect of approximate vs exact orders on the
    Dijkstra-phase time).  ``block_size`` / ``kernel`` route the sweep
    through the batched engine (see
    :func:`repro.core.runner.solve_apsp`).
    """
    return solve_apsp(
        graph,
        algorithm="paralg2",
        num_threads=num_threads,
        backend=backend,
        schedule=schedule,
        ordering=ordering,
        machine=machine,
        ratio=ratio,
        queue=queue,
        block_size=block_size,
        kernel=kernel,
    )
