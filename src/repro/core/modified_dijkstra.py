"""Algorithm 1 — Peng *et al.*'s modified Dijkstra with flag reuse.

One SSSP sweep from source ``s`` over the shared distance matrix:
dequeue a vertex ``t``; if ``flag[t]`` says row ``t`` is already a final
SSSP solution, fold that whole row into row ``s`` (dynamic-programming
shortcut) and *prune* — do not expand ``t``'s edges; otherwise relax
``t``'s out-arcs and enqueue improved targets.  After the queue drains,
row ``s`` is final and ``flag[s]`` is raised.

**Pseudocode erratum** (DESIGN.md §1): as printed in the companion
paper, both loops sit inside ``if flag[t] = 1``, which would make the
whole algorithm a no-op on a fresh flag vector.  We implement the only
consistent reading — the one in Peng et al.'s original paper — where the
merge-and-prune happens *when* the flag is set and the edge relaxation
happens *otherwise*.

Queue discipline: the paper describes a plain queue ("based on a
breadth-first search approach"), i.e. SPFA-style label correcting, which
is what ``queue="fifo"`` implements (with the standard in-queue
deduplication).  ``queue="heap"`` is a binary-heap variant (closer to
textbook Dijkstra) provided for the ablation benches; both are exact for
positive weights and both honour the flag shortcut.

Correctness of the prune without re-enqueue: when ``flag[t]`` holds, row
``t`` is a *complete* SSSP solution, so for any continuation through an
improved vertex ``v`` the row already dominates:
``D[t, x] ≤ D[t, v] + d(v, x)`` hence
``D[s, t] + D[t, x] ≤ newD[s, v] + d(v, x)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..obs import metrics as _obs
from ..types import OpCounts
from .kernels import merge_row, relax_edges
from .state import APSPState

__all__ = ["modified_dijkstra_sssp"]

#: predicate deciding whether a raised flag may be *used* by this run —
#: the simulator passes "was that row complete before my dispatch time?"
FlagGate = Callable[[int], bool]


def modified_dijkstra_sssp(
    graph: CSRGraph,
    source: int,
    state: APSPState,
    *,
    queue: str = "fifo",
    flag_gate: Optional[FlagGate] = None,
    use_flags: bool = True,
    set_flag: bool = True,
) -> OpCounts:
    """Run one modified-Dijkstra sweep from ``source``.

    Parameters
    ----------
    queue:
        ``"fifo"`` (SPFA label-correcting, the paper's discipline) or
        ``"heap"`` (binary heap by tentative distance).
    flag_gate:
        Extra predicate ANDed with ``flag[t]``; lets the simulator
        restrict reuse to rows finished before this run started.
    use_flags:
        ``False`` turns the sweep into a plain SSSP (no reuse) — the
        baseline for measuring how much the DP shortcut saves.
    set_flag:
        Whether to raise ``flag[source]`` on completion (Algorithm 1
        line 21).  Real runs always do; ablations may not.

    Returns the operation counts of this sweep.
    """
    n = state.n
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} outside [0, {n})")
    if graph.num_vertices != n:
        raise AlgorithmError(
            f"state sized for {n} vertices but graph has {graph.num_vertices}"
        )
    counts = OpCounts()
    dist = state.dist
    ds = dist[source]
    ds[source] = 0.0  # Algorithm 1 line 2
    flag = state.flag
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    if queue == "fifo":
        _run_fifo(
            dist, ds, flag, indptr, indices, weights, source, counts,
            flag_gate, use_flags, n,
        )
    elif queue == "heap":
        _run_heap(
            dist, ds, flag, indptr, indices, weights, source, counts,
            flag_gate, use_flags, n,
        )
    else:
        raise AlgorithmError(f"unknown queue discipline {queue!r}")

    if set_flag:
        flag[source] = 1  # line 21: row `source` is now final
    reg = _obs._current
    if reg is not None:
        reg.add("sweep.count", 1)
        reg.add_many(counts.as_dict(), prefix="ops")
    return counts


def _run_fifo(
    dist, ds, flag, indptr, indices, weights, source, counts,
    flag_gate, use_flags, n,
) -> None:
    reg = _obs._current  # occupancy tracking only when metrics are on
    peak = 1
    in_queue = np.zeros(n, dtype=bool)
    q: deque = deque([source])
    in_queue[source] = True
    while q:
        if reg is not None and len(q) > peak:
            peak = len(q)
        t = q.popleft()
        in_queue[t] = False
        counts.pops += 1
        if use_flags and t != source and flag[t] and (
            flag_gate is None or flag_gate(t)
        ):
            counts.row_merges += 1
            counts.merge_comparisons += n
            counts.flag_hits += 1
            merge_row(ds, dist[t], float(ds[t]))
            continue  # prune: the final row covers every continuation
        lo, hi = indptr[t], indptr[t + 1]
        nbrs = indices[lo:hi]
        counts.edge_relaxations += int(nbrs.size)
        improved, k = relax_edges(ds, nbrs, weights[lo:hi], float(ds[t]))
        counts.edge_improvements += k
        for v in improved:
            if not in_queue[v]:
                in_queue[v] = True
                q.append(int(v))
    if reg is not None:
        reg.gauge_max("sweep.fifo.peak_queue_occupancy", peak)


def _run_heap(
    dist, ds, flag, indptr, indices, weights, source, counts,
    flag_gate, use_flags, n,
) -> None:
    reg = _obs._current
    peak = 1
    heap = [(0.0, source)]
    while heap:
        if reg is not None and len(heap) > peak:
            peak = len(heap)
        d, t = heapq.heappop(heap)
        counts.pops += 1
        if d > ds[t]:
            continue  # stale entry (lazy deletion)
        if use_flags and t != source and flag[t] and (
            flag_gate is None or flag_gate(t)
        ):
            counts.row_merges += 1
            counts.merge_comparisons += n
            counts.flag_hits += 1
            merge_row(ds, dist[t], float(ds[t]))
            continue
        lo, hi = indptr[t], indptr[t + 1]
        nbrs = indices[lo:hi]
        counts.edge_relaxations += int(nbrs.size)
        improved, k = relax_edges(ds, nbrs, weights[lo:hi], float(ds[t]))
        counts.edge_improvements += k
        for v in improved:
            heapq.heappush(heap, (float(ds[v]), int(v)))
    if reg is not None:
        reg.gauge_max("sweep.heap.peak_queue_occupancy", peak)
