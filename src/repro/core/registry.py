"""Declarative solver registry.

Every APSP algorithm the library can run is described by one
:class:`SolverSpec`: its pipeline defaults (ordering, schedule), its
*capability flags* (can it take negative weights? ride the batched
kernels? run on the SIM backend? build a distance store?) and the
callables that actually solve.  :class:`repro.config.SolverConfig`
validates against the spec's flags, :func:`repro.core.solve_apsp`
dispatches through ``spec.solve``, and
:func:`repro.core.solve_apsp_shards` streams shards through
``spec.shard_hooks`` — so registering a solver here is the *only* step
needed to expose it through the config layer, the CLI
(``repro-apsp solve --algorithm <name>``), the smoke/bench harness and
the distance-store builder.

The five paper algorithms (``seq-basic`` … ``parapsp``) are registered
by :mod:`repro.core.runner` as one *sweep family* sharing a solve
callable; ``delta-stepping`` and ``johnson`` register themselves from
their own modules.  Names are canonicalised so ``delta_stepping`` and
``delta-stepping`` address the same spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..exceptions import ConfigError
from ..types import Schedule

__all__ = [
    "SolverSpec",
    "ShardHooks",
    "register_solver",
    "get_solver",
    "solver_names",
    "canonical_solver_name",
]


@dataclass
class ShardHooks:
    """How one solver participates in the shard-streaming solve.

    ``graph`` is the graph the per-row sweeps actually run on (Johnson
    substitutes its reweighted graph); ``sweep_row(graph, source,
    state, cfg)`` fills ``state.dist[source]`` with that source's
    distance row and returns the sweep's :class:`~repro.types.OpCounts`
    (the cluster simulation prices each source with them; plain
    streaming callers may ignore the return value); the optional
    ``finalize(start, block)`` post-processes a completed ``(k, n)``
    block in place before it is yielded (Johnson un-reweights there).
    """

    graph: object
    sweep_row: Callable[..., None]
    finalize: Optional[Callable[[int, object], None]] = None


@dataclass(frozen=True)
class SolverSpec:
    """Declarative description of one registered APSP solver.

    The first five fields mirror the legacy ``AlgorithmSpec`` so code
    that only reads pipeline defaults (the CLI info table, the config
    cross-checks) is unchanged.  The capability flags are what
    :class:`repro.config.SolverConfig` validates requests against; the
    callables are what the runner dispatches to.
    """

    name: str
    ordering: str
    schedule: Schedule
    parallel: bool
    description: str
    #: accepts graphs with strictly negative arc weights
    negative_weights: bool = False
    #: can route its sweep through the batched lockstep kernels
    #: (``block_size`` / ``kernel`` knobs)
    batchable: bool = False
    #: has a virtual-time model on the SIM backend
    simulatable: bool = True
    #: can stream shards for :func:`repro.serve.solve_to_store`
    store_buildable: bool = True
    #: honours Algorithm 1's flag-reuse shortcut (``use_flags``)
    uses_flags: bool = False
    #: consumes the Δ bucket-width knob (``algorithm.delta``)
    uses_delta: bool = False
    #: ``solve(graph, cfg, spec) -> APSPResult``
    solve: Optional[Callable] = field(default=None, compare=False, repr=False)
    #: ``shard_hooks(graph, cfg) -> ShardHooks`` (required when
    #: ``store_buildable``)
    shard_hooks: Optional[Callable] = field(
        default=None, compare=False, repr=False
    )

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags as a plain dict (docs / CLI tables)."""
        return {
            "negative_weights": self.negative_weights,
            "batchable": self.batchable,
            "simulatable": self.simulatable,
            "store_buildable": self.store_buildable,
            "uses_flags": self.uses_flags,
            "uses_delta": self.uses_delta,
        }


#: the registry itself; :data:`repro.core.runner.ALGORITHMS` is this
#: very dict, kept importable under its historical name
_REGISTRY: Dict[str, SolverSpec] = {}


def canonical_solver_name(name: object) -> str:
    """Normalise a user-supplied solver name (``delta_stepping`` →
    ``delta-stepping``)."""
    return str(name).strip().lower().replace("_", "-")


def register_solver(spec: SolverSpec, *, replace: bool = False) -> SolverSpec:
    """Add ``spec`` to the registry under its canonical name.

    Re-registering an existing name is an error unless ``replace=True``
    (tests swapping in instrumented solvers use that).  Returns the spec
    for decorator-ish chaining.
    """
    if not isinstance(spec, SolverSpec):
        raise TypeError(
            f"register_solver expects a SolverSpec, got {type(spec).__name__}"
        )
    key = canonical_solver_name(spec.name)
    if key != spec.name:
        raise ConfigError(
            f"solver name {spec.name!r} is not canonical; register it "
            f"as {key!r}",
            field="algorithm.name",
        )
    if spec.solve is None:
        raise ConfigError(
            f"solver {key!r} has no solve callable",
            field="algorithm.name",
        )
    if spec.store_buildable and spec.shard_hooks is None:
        raise ConfigError(
            f"solver {key!r} declares store_buildable but provides no "
            "shard_hooks",
            field="algorithm.name",
        )
    if key in _REGISTRY and not replace:
        raise ConfigError(
            f"solver {key!r} is already registered "
            "(pass replace=True to override)",
            field="algorithm.name",
        )
    _REGISTRY[key] = spec
    return spec


def get_solver(name: object) -> SolverSpec:
    """Look up a solver by (canonicalised) name.

    Raises :class:`~repro.exceptions.ConfigError` naming the
    ``algorithm.name`` field and listing the registered solvers.
    """
    key = canonical_solver_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown algorithm {name!r}; registered solvers: {known}",
            field="algorithm.name",
        ) from None


def solver_names() -> Tuple[str, ...]:
    """All registered solver names, in registration order."""
    return tuple(_REGISTRY)
