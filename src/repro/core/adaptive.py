"""Peng et al.'s *adaptive* optimized algorithm (paper §2.2).

The third sequential variant: while sweeping, track which vertices
actually appear as intermediates of shortest paths, and periodically
re-prioritise the not-yet-processed sources by that evidence (falling
back to degree for the unobserved).  The ICPP paper *declined* to
parallelise it — the order adaptation is inherently sequential and the
measured gain over the static optimized order was small — which makes
it exactly the kind of ablation worth having: this module lets the
claim be checked.

Intermediate evidence: a vertex ``t`` scores

* the number of relaxation improvements it produced while being
  expanded (it sits in the middle of the tentative paths it created);
* a larger bonus each time its *finished row* was merged by a later
  sweep (it provably shortcut a whole SSSP).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..graphs.degree import DegreeKind, degree_array
from ..order import exact_bucket_order
from ..types import OpCounts, PhaseTimes
from .modified_dijkstra import modified_dijkstra_sssp
from .state import APSPResult, new_state

__all__ = ["seq_adaptive"]

#: score granted when a finished row gets merged by a later sweep
MERGE_BONUS = 8.0


def seq_adaptive(
    graph: CSRGraph,
    *,
    reorder_every: Optional[int] = None,
    queue: str = "fifo",
    degree_kind: "DegreeKind | str" = DegreeKind.OUT,
) -> APSPResult:
    """Sequential adaptive-optimized APSP.

    ``reorder_every`` controls how often the remaining sources are
    re-sorted by accumulated intermediate evidence (default: 20 times
    over the whole run).  The distance matrix is exact regardless — the
    order only shifts work.
    """
    n = graph.num_vertices
    if n == 0:
        return APSPResult(
            algorithm="seq-adaptive",
            dist=np.zeros((0, 0)),
            num_threads=1,
            backend="serial",
        )
    if reorder_every is None:
        reorder_every = max(1, n // 20)
    if reorder_every < 1:
        raise AlgorithmError("reorder_every must be >= 1")

    degrees = degree_array(graph, degree_kind)
    t0 = time.perf_counter()
    order = exact_bucket_order(degrees).order.copy()
    ordering_seconds = time.perf_counter() - t0

    state = new_state(n)
    score = np.zeros(n, dtype=np.float64)
    per_counts: List[OpCounts] = []
    per_source_work = np.zeros(n, dtype=np.float64)

    t1 = time.perf_counter()
    position = 0
    while position < n:
        s = int(order[position])
        counts = modified_dijkstra_sssp(graph, s, state, queue=queue)
        per_counts.append(counts)
        per_source_work[s] = counts.total_work()
        # expanding s improved counts.edge_improvements tentative paths
        score[s] += counts.edge_improvements
        # merges observed this sweep credit the *merged* rows; we do not
        # know which rows were merged without instrumenting the inner
        # loop, so the bonus is distributed to the already-finished
        # sources proportionally to their current score (cheap proxy
        # that still concentrates priority on proven intermediates)
        new_merges = counts.row_merges
        if new_merges and position:
            done = order[: position + 1]
            weights = score[done] + 1.0
            score[done] += MERGE_BONUS * new_merges * weights / weights.sum()
        position += 1
        if position % reorder_every == 0 and position < n:
            # re-sort the tail by (evidence, degree) descending
            tail = order[position:]
            keys = np.lexsort((-degrees[tail], -score[tail]))
            order[position:] = tail[keys]
    dijkstra_seconds = time.perf_counter() - t1

    return APSPResult(
        algorithm="seq-adaptive",
        dist=state.dist,
        num_threads=1,
        backend="serial",
        schedule=None,
        order=order,
        ordering_method="adaptive",
        phase_times=PhaseTimes(
            ordering=ordering_seconds, dijkstra=dijkstra_seconds
        ),
        ops=OpCounts.sum(per_counts),
        per_source_work=per_source_work,
    )
