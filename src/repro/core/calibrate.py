"""Calibrating the cost model against this host's wall clock.

Work units are abstract, but a user who wants "roughly how long would
ParAPSP take on a 16-core box like mine?" needs a unit→seconds factor
and, ideally, host-fitted per-operation weights.  This module provides
both:

* :func:`measure_sweeps` — time real modified-Dijkstra sweeps on a
  calibration graph and collect (op-count, seconds) samples;
* :func:`fit_cost_model` — non-negative least squares over the samples,
  producing a :class:`~repro.core.costs.DijkstraCostModel` whose units
  are *seconds on this host* (and therefore a seconds-per-work-unit
  interpretation of simulated makespans).

The shipped default constants (see ``docs/simulation_model.md``) stay
deliberately architectural; calibration is opt-in for users who want
host-specific absolute numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .costs import DijkstraCostModel
from .modified_dijkstra import modified_dijkstra_sssp
from .state import new_state
from ..exceptions import ValidationError
from ..graphs.csr import CSRGraph
from ..types import OpCounts

__all__ = ["CalibrationSample", "measure_sweeps", "fit_cost_model"]


@dataclass(frozen=True)
class CalibrationSample:
    """One timed batch: summed operation counts, calls, wall duration."""

    counts: OpCounts
    seconds: float
    calls: int = 1


def measure_sweeps(
    graph: CSRGraph,
    *,
    max_sources: Optional[int] = None,
    batch: int = 16,
    queue: str = "fifo",
) -> List[CalibrationSample]:
    """Run timed modified-Dijkstra sweeps over (a prefix of) the
    sources, with flag reuse active so merge-heavy and relax-heavy
    sweeps both appear in the sample.

    Individual sweeps finish in microseconds and drown in timer noise,
    so sweeps are timed in batches of ``batch``: each sample carries
    the summed counts and the batch wall time (the regression is
    linear, so batch aggregation keeps the fit unbiased while averaging
    the noise away).
    """
    n = graph.num_vertices
    if n == 0:
        raise ValidationError("cannot calibrate on an empty graph")
    if batch < 1:
        raise ValidationError("batch must be >= 1")
    state = new_state(n)
    limit = n if max_sources is None else min(n, max_sources)
    samples: List[CalibrationSample] = []
    s = 0
    while s < limit:
        hi = min(s + batch, limit)
        total = OpCounts()
        t0 = time.perf_counter()
        for src in range(s, hi):
            total += modified_dijkstra_sssp(graph, src, state, queue=queue)
        samples.append(
            CalibrationSample(total, time.perf_counter() - t0, calls=hi - s)
        )
        s = hi
    return samples


def fit_cost_model(
    samples: List[CalibrationSample],
) -> Tuple[DijkstraCostModel, float]:
    """Least-squares fit of per-operation seconds from timed sweeps.

    Returns ``(model, r_squared)``.  The model's unit is seconds; a
    simulated makespan computed with it reads directly as an estimated
    wall time for the simulated machine.  Negative fitted coefficients
    (possible when features are collinear on a small sample) are
    clipped to zero before the fixed-cost refit.
    """
    if len(samples) < 5:
        raise ValidationError(
            f"need at least 5 calibration samples, got {len(samples)}"
        )
    features = np.array(
        [
            [
                float(s.calls),  # per-call fixed cost
                s.counts.pops,
                s.counts.edge_relaxations,
                s.counts.merge_comparisons,
                s.counts.row_merges,
            ]
            for s in samples
        ]
    )
    y = np.array([s.seconds for s in samples])
    try:
        # true non-negative least squares when scipy is available —
        # plain lstsq + clipping degrades badly on collinear samples
        from scipy.optimize import nnls

        coef, _residual = nnls(features, y)
    except ImportError:  # numpy-only fallback
        coef, *_ = np.linalg.lstsq(features, y, rcond=None)
        coef = np.clip(coef, 0.0, None)
    pred = features @ coef
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    model = DijkstraCostModel(
        call=float(coef[0]),
        pop=float(coef[1]),
        edge_relaxation=float(coef[2]),
        merge_comparison=float(coef[3]),
        row_merge=float(coef[4]),
    )
    return model, r2
