"""Classic (unmodified) Dijkstra SSSP — the reuse-free reference.

Used by the repeated-Dijkstra baseline and by ablations that measure
how much the flag shortcut saves.  Binary heap with lazy deletion;
O((n + m) log n).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..types import INF, OpCounts

__all__ = ["dijkstra_sssp"]


def dijkstra_sssp(
    graph: CSRGraph, source: int, *, out: np.ndarray | None = None
) -> tuple[np.ndarray, OpCounts]:
    """Single-source shortest distances from ``source``.

    Returns ``(dist, counts)`` where ``dist[v]`` is the shortest
    distance (``inf`` if unreachable).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} outside [0, {n})")
    if out is None:
        dist = np.full(n, INF)
    else:
        if out.shape != (n,):
            raise AlgorithmError(f"out buffer must have shape ({n},)")
        dist = out
        dist.fill(INF)
    counts = OpCounts()
    dist[source] = 0.0
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    heap = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, t = heapq.heappop(heap)
        counts.pops += 1
        if settled[t]:
            continue
        settled[t] = True
        for k in range(indptr[t], indptr[t + 1]):
            v = indices[k]
            counts.edge_relaxations += 1
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                counts.edge_improvements += 1
                heapq.heappush(heap, (nd, int(v)))
    return dist, counts
