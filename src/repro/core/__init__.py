"""The paper's core contribution: modified-Dijkstra APSP, sequential
and parallel, on real backends and on the simulated machine."""

from .batch import (
    BlockTuneSample,
    autotune_block_size,
    resolve_block_size,
    run_block,
)
from .calibrate import CalibrationSample, fit_cost_model, measure_sweeps
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .dijkstra import dijkstra_sssp
from .kernels import (
    KERNELS,
    BlockedKernel,
    BlockKernel,
    RowBlockKernel,
    ScipyBlockKernel,
    kernel_names,
    merge_row,
    relax_edges,
    resolve_kernel,
)
from .modified_dijkstra import modified_dijkstra_sssp
from .registry import (
    ShardHooks,
    SolverSpec,
    get_solver,
    register_solver,
    solver_names,
)
from .adaptive import seq_adaptive
from .basic import seq_basic
from .optimized import seq_optimized
from .paths import PathResult, apsp_with_paths, reconstruct_path, verify_predecessors
from .par_alg1 import par_alg1
from .par_alg2 import par_alg2
from .par_apsp import par_apsp
from .runner import (
    ALGORITHMS,
    AlgorithmSpec,
    algorithm_names,
    solve_apsp,
    solve_apsp_shards,
)
from .delta_stepping import (
    DeltaGraph,
    autotune_delta,
    delta_stepping_sssp,
    run_delta_sweep,
)
from .johnson import (
    bellman_ford_apsp,
    bellman_ford_potentials,
    bellman_ford_sssp,
    reweight_graph,
)
from .simulate import SimulatedSweep, simulate_sweep
from .state import APSPResult, APSPState, new_state
from .sweep import SweepOutcome, run_sweep
from .verify import verify_apsp

__all__ = [
    "BlockTuneSample",
    "autotune_block_size",
    "resolve_block_size",
    "run_block",
    "CalibrationSample",
    "fit_cost_model",
    "measure_sweeps",
    "DEFAULT_COST_MODEL",
    "DijkstraCostModel",
    "dijkstra_sssp",
    "KERNELS",
    "BlockKernel",
    "BlockedKernel",
    "RowBlockKernel",
    "ScipyBlockKernel",
    "kernel_names",
    "resolve_kernel",
    "merge_row",
    "relax_edges",
    "modified_dijkstra_sssp",
    "seq_adaptive",
    "seq_basic",
    "seq_optimized",
    "PathResult",
    "apsp_with_paths",
    "reconstruct_path",
    "verify_predecessors",
    "par_alg1",
    "par_alg2",
    "par_apsp",
    "ALGORITHMS",
    "AlgorithmSpec",
    "algorithm_names",
    "SolverSpec",
    "ShardHooks",
    "register_solver",
    "get_solver",
    "solver_names",
    "DeltaGraph",
    "autotune_delta",
    "delta_stepping_sssp",
    "run_delta_sweep",
    "bellman_ford_potentials",
    "bellman_ford_sssp",
    "bellman_ford_apsp",
    "reweight_graph",
    "solve_apsp",
    "solve_apsp_shards",
    "SimulatedSweep",
    "simulate_sweep",
    "APSPResult",
    "APSPState",
    "new_state",
    "SweepOutcome",
    "run_sweep",
    "verify_apsp",
]
