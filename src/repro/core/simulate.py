"""Simulated (virtual-time) execution of the APSP sweep phase.

This is where the paper's multi-thread Figures 7–10 come from on a
single-core host: the *real* modified-Dijkstra sweeps run one by one in
the order a T-thread machine would dispatch them, and each sweep's
measured operation counts are priced by the cost model into its virtual
duration.

Flag-availability interleaving — the operational version of the paper's
dynamic-programming argument — is what distinguishes this from a plain
"divide the serial time by T" model: a sweep dispatched at virtual time
τ may only merge rows of sweeps that *completed* by τ, exactly like a
thread on the real machine (approximation: flags that arrive mid-sweep
are not used; they only add reuse, so the simulated work is a slight
over-estimate of the real machine's).

The memory-hierarchy effects (aggregate LLC growth across sockets vs.
bandwidth contention) enter through
:meth:`~repro.simx.MachineSpec.memory_cost_multiplier`, which is the
mechanism behind the hyper-linear speedups of Figures 9–10.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..simx.machine import MachineSpec
from ..simx.parfor import ParForOutcome, simulate_parallel_for
from ..types import OpCounts, Schedule
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .modified_dijkstra import modified_dijkstra_sssp
from .state import new_state

__all__ = ["SimulatedSweep", "simulate_sweep"]


class SimulatedSweep:
    """Result bundle of a simulated sweep phase."""

    __slots__ = ("dist", "per_source", "outcome")

    def __init__(
        self,
        dist: np.ndarray,
        per_source: list,
        outcome: ParForOutcome,
    ) -> None:
        self.dist = dist
        self.per_source = per_source
        self.outcome = outcome

    @property
    def makespan(self) -> float:
        return self.outcome.result.makespan

    def total_ops(self) -> OpCounts:
        return OpCounts.sum(self.per_source)


def simulate_sweep(
    graph: CSRGraph,
    order: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    queue: str = "fifo",
    use_flags: bool = True,
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
    trace: bool = False,
    fault_plan=None,
) -> SimulatedSweep:
    """Play the sweep phase on the simulated machine.

    The produced distance matrix is the exact APSP solution (reuse
    affects only *work*, never results); the virtual makespan reflects
    the T-thread schedule, flag interleaving and memory effects.
    ``trace=True`` records per-sweep timeline events for the unified
    tracing layer (:mod:`repro.trace`).

    ``fault_plan`` replays worker faults in virtual time (see
    :mod:`repro.faults`): each sweep still runs exactly once — a killed
    virtual thread's unissued sources are re-dispatched to survivors —
    so the distance matrix stays exact under any plan the simulator can
    recover from.
    """
    schedule = Schedule.coerce(schedule)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise AlgorithmError(
            f"order must list all {n} sources, got shape {order.shape}"
        )
    state = new_state(n)
    per_source: list = [OpCounts() for _ in range(n)]
    #: completion virtual time per vertex id; +inf = not finished yet
    completed_at = np.full(n, np.inf)
    multiplier = machine.memory_cost_multiplier(num_threads)

    def cost_fn(i: int, dispatch_time: float, _thread: int) -> float:
        s = int(order[i])

        def gate(t: int) -> bool:
            return completed_at[t] <= dispatch_time

        counts = modified_dijkstra_sssp(
            graph,
            s,
            state,
            queue=queue,
            use_flags=use_flags,
            flag_gate=gate,
        )
        per_source[s] = counts
        duration = cost_model.sweep_cost(counts)
        # the parfor applies cost_multiplier after this returns; record
        # the completion time in final (multiplied) units
        completed_at[s] = dispatch_time + duration * multiplier
        return duration

    outcome = simulate_parallel_for(
        n,
        cost_fn,
        machine,
        num_threads=num_threads,
        schedule=schedule,
        chunk=chunk,
        cost_multiplier=multiplier,
        trace=trace,
        fault_plan=fault_plan,
    )
    return SimulatedSweep(state.dist, per_source, outcome)
