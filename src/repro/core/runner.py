"""The unified APSP entry point: :func:`solve_apsp`.

Every algorithm of the paper is a (ordering, schedule) configuration of
the same two-phase pipeline — compute a source order, then run the
modified-Dijkstra sweep over it:

=============== ============ ================== =====================
algorithm       ordering     sweep schedule      paper reference
=============== ============ ================== =====================
``seq-basic``   none         (sequential)        Algorithm 2
``seq-opt``     selection    (sequential)        Algorithm 3
``paralg1``     none         dynamic-cyclic      §3.1 ParAlg1
``paralg2``     selection    dynamic-cyclic      Algorithm 4 ParAlg2
``parapsp``     multilists   dynamic-cyclic      Algorithm 8 ParAPSP
=============== ============ ================== =====================

Overridable knobs: the sweep ``schedule`` (Figure 1's study), the
``ordering`` (Figure 5 swaps ParBuckets/ParMax into ParAlg2), the queue
discipline, the degree kind and the Algorithm 3 ``ratio``.

Backends: ``serial`` and ``threads`` / ``process`` run for real (wall
clock); ``sim`` runs on a :class:`~repro.simx.MachineSpec` in virtual
time and is how the multi-thread figures are regenerated on this host.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import NegativeWeightError
from ..graphs.csr import CSRGraph
from ..graphs.degree import DegreeKind, degree_array
from ..obs import metrics as _obs
from ..order import compute_order, simulate_order
from ..simx.machine import MachineSpec, default_machine
from ..types import Backend, PhaseTimes, Schedule
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .registry import (
    ShardHooks,
    SolverSpec,
    _REGISTRY,
    get_solver,
    register_solver,
    solver_names,
)
from .simulate import simulate_sweep
from .state import APSPResult
from .sweep import run_sweep

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "solve_apsp",
    "solve_apsp_shards",
    "algorithm_names",
]

#: historical alias — an ``AlgorithmSpec`` is now a registry
#: :class:`~repro.core.registry.SolverSpec` (same leading fields)
AlgorithmSpec = SolverSpec

#: the solver registry under its historical name; this *is* the live
#: registry dict, so ``ALGORITHMS[name]`` sees every registered solver
ALGORITHMS: Dict[str, SolverSpec] = _REGISTRY


def algorithm_names() -> Tuple[str, ...]:
    return solver_names()


def _sweep_shard_hooks(graph: CSRGraph, cfg) -> ShardHooks:
    """Sweep-family shard participation: one modified-Dijkstra row per
    source, flag reuse restricted to in-shard rows (see
    :func:`solve_apsp_shards`)."""
    from .modified_dijkstra import modified_dijkstra_sssp

    def sweep_row(g, source, state, cfg):
        return modified_dijkstra_sssp(
            g,
            int(source),
            state,
            queue=cfg.algorithm.queue,
            use_flags=cfg.algorithm.use_flags,
        )

    return ShardHooks(graph, sweep_row)


def _register_sweep_family() -> None:
    """Register the five paper algorithms as one sweep family.

    They share every capability (batched kernels, SIM model, shard
    streaming, flag reuse) and one solve callable; only their pipeline
    defaults differ.
    """
    common = dict(
        negative_weights=False,
        batchable=True,
        simulatable=True,
        store_buildable=True,
        uses_flags=True,
        uses_delta=False,
        solve=_solve_sweep_family,
        shard_hooks=_sweep_shard_hooks,
    )
    for spec in (
        SolverSpec(
            "seq-basic",
            ordering="none",
            schedule=Schedule.DYNAMIC,
            parallel=False,
            description="Peng et al. basic APSP (Algorithm 2), sequential",
            **common,
        ),
        SolverSpec(
            "seq-opt",
            ordering="selection",
            schedule=Schedule.DYNAMIC,
            parallel=False,
            description="Peng et al. optimized APSP (Algorithm 3), "
            "sequential",
            **common,
        ),
        SolverSpec(
            "paralg1",
            ordering="none",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="parallel basic APSP (§3.1)",
            **common,
        ),
        SolverSpec(
            "paralg2",
            ordering="selection",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="parallel optimized APSP, sequential ordering "
            "(Algorithm 4)",
            **common,
        ),
        SolverSpec(
            "parapsp",
            ordering="multilists",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="ParAPSP: MultiLists ordering + dynamic-cyclic "
            "sweep (Algorithm 8)",
            **common,
        ),
    ):
        register_solver(spec)


#: defaults of the legacy flat kwargs — used by the shim to detect which
#: arguments a caller actually passed
_KWARG_DEFAULTS: Dict[str, object] = {
    "algorithm": "parapsp",
    "num_threads": 1,
    "backend": Backend.SERIAL,
    "schedule": None,
    "ordering": None,
    "machine": None,
    "queue": "fifo",
    "ratio": 1.0,
    "degree_kind": DegreeKind.OUT,
    "chunk": 1,
    "use_flags": True,
    "delta": None,
    "block_size": None,
    "kernel": "auto",
    "cost_model": DEFAULT_COST_MODEL,
    "trace": False,
    "fault_plan": None,
    "on_worker_death": "raise",
    "timeout": None,
    "max_retries": 3,
}


def _explicit_kwargs(passed: Dict[str, object]) -> Dict[str, object]:
    """The kwargs that differ from their legacy defaults."""
    out: Dict[str, object] = {}
    for name, value in passed.items():
        default = _KWARG_DEFAULTS[name]
        if value is default:
            continue
        try:
            if value == default:
                continue
        except Exception:  # exotic objects without sane __eq__
            pass
        out[name] = value
    return out


def _normalize_kwargs(kwargs: Dict[str, object]) -> Dict[str, object]:
    """Enum-typed legacy kwargs → the strings SolverConfig stores."""
    out = dict(kwargs)
    for key in ("backend", "schedule", "degree_kind"):
        value = out.get(key)
        if isinstance(value, (Backend, Schedule, DegreeKind)):
            out[key] = value.value
    return out


def solve_apsp(
    graph: CSRGraph,
    *,
    config=None,
    algorithm: str = "parapsp",
    num_threads: int = 1,
    backend: "Backend | str" = Backend.SERIAL,
    schedule: "Schedule | str | None" = None,
    ordering: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
    queue: str = "fifo",
    ratio: float = 1.0,
    degree_kind: "DegreeKind | str" = DegreeKind.OUT,
    chunk: int = 1,
    use_flags: bool = True,
    delta: "float | str | None" = None,
    block_size: "int | str | None" = None,
    kernel: str = "auto",
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
    trace: bool = False,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> APSPResult:
    """Solve all-pairs shortest paths; see the module docstring.

    Configuration: ``config`` (a :class:`repro.config.SolverConfig`, or
    a nested mapping in its ``to_dict`` layout) is the first-class way
    to describe a run; the remaining keyword arguments are the legacy
    flat form and are folded into a ``SolverConfig`` by a shim, so both
    spellings share one validation and dispatch path and produce
    bitwise-identical results.  Passing ``config`` *and* flat kwargs
    that conflict with it emits a :class:`DeprecationWarning` (the
    explicit kwargs win).  All user-input validation raises
    :class:`~repro.exceptions.ConfigError` naming the offending field.

    Fault tolerance: ``fault_plan`` (a :class:`repro.faults.FaultPlan`)
    injects deterministic worker faults into the sweep phase;
    ``on_worker_death`` picks the recovery policy (``"raise"`` surfaces
    a :class:`~repro.exceptions.BackendError`, ``"retry"`` re-runs only
    the lost sources, reproducing the exact distances of a fault-free
    run).  ``timeout`` / ``max_retries`` bound each process round.  On
    the SIM backend faults replay in virtual time and the recovery
    phase is visible in the trace.

    Returns an :class:`~repro.core.state.APSPResult` whose ``dist`` is
    the exact APSP matrix regardless of algorithm, backend, schedule or
    thread count.

    ``delta`` (a positive float, ``"auto"``, or ``None`` = auto) sets
    the Δ-stepping bucket width; only the ``delta-stepping`` solver
    consumes it (:class:`~repro.config.SolverConfig` rejects it
    elsewhere).

    ``block_size`` (an int, ``"auto"``, or ``None`` = unbatched) routes
    the sweep phase through the batched lockstep engine of
    :mod:`repro.core.batch`; ``kernel`` selects the blocked-kernel
    implementation.  The SIM backend models per-operation costs, which
    batching does not change (``OpCounts`` are identical by
    construction), so both knobs are ignored there.

    ``trace=True`` (SIM backend) makes both phases record per-event
    virtual timelines on ``sim_ordering`` / ``sim_dijkstra``, the input
    of the unified tracing layer (:mod:`repro.trace`).  Real backends
    ignore it — wall-clock tracing records :func:`repro.obs.span`
    sections through a :class:`repro.trace.TraceRecorder` instead.
    """
    from ..config import SolverConfig
    from ..exceptions import ConfigError

    overrides = _normalize_kwargs(
        _explicit_kwargs(
            {
                "algorithm": algorithm,
                "num_threads": num_threads,
                "backend": backend,
                "schedule": schedule,
                "ordering": ordering,
                "machine": machine,
                "queue": queue,
                "ratio": ratio,
                "degree_kind": degree_kind,
                "chunk": chunk,
                "use_flags": use_flags,
                "delta": delta,
                "block_size": block_size,
                "kernel": kernel,
                "cost_model": cost_model,
                "trace": trace,
                "fault_plan": fault_plan,
                "on_worker_death": on_worker_death,
                "timeout": timeout,
                "max_retries": max_retries,
            }
        )
    )
    if config is None:
        cfg = SolverConfig.from_kwargs(**overrides)
    else:
        if isinstance(config, dict):
            config = SolverConfig.from_dict(config)
        elif not isinstance(config, SolverConfig):
            raise ConfigError(
                f"config must be a SolverConfig or a mapping, "
                f"got {type(config).__name__}",
                field="config",
            )
        cfg = config
        if overrides:
            merged = config.with_overrides(**overrides)
            if merged != config:
                warnings.warn(
                    "solve_apsp received both config= and conflicting "
                    f"keyword argument(s) {sorted(overrides)}; the "
                    "explicit kwargs win.  Pass one SolverConfig instead.",
                    DeprecationWarning,
                    stacklevel=2,
                )
            cfg = merged
    return _solve_with_config(graph, cfg)


def _solve_with_config(graph: CSRGraph, cfg) -> APSPResult:
    """The single dispatch path behind both ``solve_apsp`` spellings.

    Resolves the registered :class:`~repro.core.registry.SolverSpec`,
    enforces the graph-level capability contract (a negative-weight
    graph needs a solver that declares ``negative_weights``) and hands
    off to the spec's solve callable.
    """
    spec = get_solver(cfg.algorithm.name)
    if graph.has_negative_weights and not spec.negative_weights:
        capable = ", ".join(
            name for name, s in ALGORITHMS.items() if s.negative_weights
        ) or "(none registered)"
        raise NegativeWeightError(
            f"graph {graph.name or 'anonymous'!r} has negative arc "
            f"weights, which solver {spec.name!r} does not support; "
            f"solvers with negative-weight support: {capable}"
        )
    return spec.solve(graph, cfg, spec)


def _solve_sweep_family(graph: CSRGraph, cfg, spec: SolverSpec) -> APSPResult:
    """``spec.solve`` of the five paper algorithms (and Johnson's inner
    phase): ordering + modified-Dijkstra sweep on the chosen backend."""
    algorithm = spec.name
    backend = Backend(cfg.parallel.backend)
    sched = (
        Schedule(cfg.algorithm.schedule)
        if cfg.algorithm.schedule is not None
        else spec.schedule
    )
    ordering_name = (
        cfg.algorithm.ordering
        if cfg.algorithm.ordering is not None
        else spec.ordering
    )
    num_threads = cfg.parallel.num_threads
    if not spec.parallel:
        # SolverConfig already rejected threads/process; SIM estimates
        # a sequential algorithm at one simulated thread
        num_threads = 1
    queue = cfg.algorithm.queue
    chunk = cfg.parallel.chunk
    use_flags = cfg.algorithm.use_flags
    cost_model = cfg.obs.cost_model
    fault_plan = cfg.faults.plan

    n = graph.num_vertices
    degrees = degree_array(graph, cfg.algorithm.degree_kind)
    ordering_kwargs = {}
    if ordering_name == "selection":
        ordering_kwargs["ratio"] = cfg.algorithm.ratio
        # the faithful O(n²) loop is the measured artefact; for plain
        # solving at larger n the fast equivalent keeps things usable
        ordering_kwargs["fast"] = n > 4000

    if backend is Backend.SIM:
        mach = cfg.parallel.machine or default_machine(num_threads)
        with _obs.span("apsp.ordering"):
            order_result = simulate_order(
                ordering_name,
                degrees,
                mach,
                num_threads=num_threads,
                trace=cfg.obs.trace,
                **ordering_kwargs,
            )
        with _obs.span("apsp.dijkstra"):
            sweep = simulate_sweep(
                graph,
                order_result.order,
                mach,
                num_threads=num_threads,
                schedule=sched,
                chunk=chunk,
                queue=queue,
                use_flags=use_flags,
                cost_model=cost_model,
                trace=cfg.obs.trace,
                fault_plan=fault_plan,
            )
        ordering_time = (
            order_result.sim.makespan if order_result.sim is not None else 0.0
        )
        result = APSPResult(
            algorithm=algorithm,
            dist=sweep.dist,
            num_threads=num_threads,
            backend=backend.value,
            schedule=sched.value,
            order=order_result.order,
            ordering_method=order_result.method,
            phase_times=PhaseTimes(
                ordering=ordering_time, dijkstra=sweep.makespan
            ),
            ops=sweep.total_ops(),
            per_source_work=np.asarray(
                [cost_model.sweep_cost(c) for c in sweep.per_source]
            ),
            sim_ordering=order_result.sim,
            sim_dijkstra=sweep.outcome.result,
        )
        reg = _obs.get_registry()
        if reg is not None:
            for name, value in sweep.outcome.result.as_metrics(
                "sim.dijkstra"
            ).items():
                reg.gauge_set(name, value)
            if order_result.sim is not None:
                for name, value in order_result.sim.as_metrics(
                    "sim.ordering"
                ).items():
                    reg.gauge_set(name, value)
        return result

    # ---- real backends -------------------------------------------------
    t0 = time.perf_counter()
    with _obs.span("apsp.ordering"):
        order_result = compute_order(
            ordering_name,
            degrees,
            num_threads=num_threads,
            backend=(
                backend if backend is not Backend.PROCESS else Backend.SERIAL
            ),
            **ordering_kwargs,
        )
    ordering_seconds = time.perf_counter() - t0
    with _obs.span("apsp.dijkstra"):
        sweep = run_sweep(
            graph,
            order_result.order,
            backend=backend,
            num_threads=num_threads,
            schedule=sched,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            block_size=cfg.batch.block_size,
            kernel=cfg.batch.kernel,
            fault_plan=fault_plan,
            on_worker_death=cfg.faults.on_worker_death,
            timeout=cfg.faults.timeout,
            max_retries=cfg.faults.max_retries,
        )
    extra: Dict[str, float] = {}
    if sweep.block_size is not None:
        extra["block_size"] = float(sweep.block_size)
    return APSPResult(
        algorithm=algorithm,
        dist=sweep.dist,
        num_threads=num_threads,
        backend=backend.value,
        schedule=sched.value,
        order=order_result.order,
        ordering_method=order_result.method,
        phase_times=PhaseTimes(
            ordering=ordering_seconds, dijkstra=sweep.elapsed_seconds
        ),
        ops=sweep.total_ops(),
        per_source_work=sweep.work_vector(cost_model),
        extra=extra,
    )


class _ShardRowMap:
    """Duck-typed ``dist`` for shard-local sweeps.

    Maps a *vertex id* onto a row of a small ``(shard_rows, n)`` buffer
    so :func:`~repro.core.modified_dijkstra.modified_dijkstra_sssp` can
    run unmodified while the full n×n matrix never exists.  Merges are
    safe because flags are raised only for in-shard sources, so the
    sweep never asks for a row outside the buffer.
    """

    __slots__ = ("buffer", "base")

    def __init__(self, buffer: np.ndarray, base: int) -> None:
        self.buffer = buffer
        self.base = base

    def __getitem__(self, vertex: int) -> np.ndarray:
        return self.buffer[vertex - self.base]


class _ShardState:
    """APSPState-shaped view over one shard buffer (see ``_ShardRowMap``)."""

    __slots__ = ("dist", "flag", "_n")

    def __init__(self, buffer: np.ndarray, base: int, n: int) -> None:
        self.dist = _ShardRowMap(buffer, base)
        self.flag = np.zeros(n, dtype=np.uint8)
        self._n = n

    @property
    def n(self) -> int:
        return self._n


def solve_apsp_shards(
    graph: CSRGraph,
    *,
    shard_rows: int,
    start_row: int = 0,
    stop_row: "int | None" = None,
    config=None,
    **kwargs,
):
    """Stream the APSP matrix as ``(start_row, rows)`` blocks.

    The out-of-core companion of :func:`solve_apsp`: shards of
    ``shard_rows`` consecutive *vertex ids* are solved one at a time
    into a single reusable ``(shard_rows, n)`` buffer, so peak memory is
    O(shard_rows × n) instead of O(n²) — this is what
    :func:`repro.serve.solve_to_store` writes to disk shard by shard.

    Within a shard, sources are issued in the configured ordering
    (restricted to the shard) and Algorithm 1's flag-reuse shortcut
    applies to rows already finalised *in the same shard*; rows outside
    the buffer are simply not reused.  Distances are exact either way
    (the flag merge is an optimisation, not a correctness requirement),
    but because the merge changes float summation order, flags-on
    output can differ from the in-memory solver in the last bit and
    depends on ``shard_rows``.  With ``use_flags=False`` every source
    is an independent Dijkstra and the output is bitwise identical to
    the in-memory solve regardless of shard size — which is why
    :func:`repro.serve.solve_to_store` builds stores that way.

    Only the serial backend is meaningful here — the buffer is the
    memory bound, and handing it to several workers would break it.
    Yields ``(start, rows)`` with ``rows`` of shape ``(k, n)`` where the
    last shard may be short.  The yielded array is reused between
    shards: copy (or write out) before advancing the generator.
    ``start_row``/``stop_row`` restrict the sweep to a sub-range of
    shards (``start_row`` on a shard boundary) — how
    :meth:`repro.serve.DistStore.repair` re-solves only damaged shards.
    """
    from ..config import SolverConfig
    from ..exceptions import ConfigError
    from ..types import INF

    if not isinstance(shard_rows, int) or isinstance(shard_rows, bool) \
            or shard_rows < 1:
        raise ConfigError(
            f"shard_rows must be an int >= 1, got {shard_rows!r}",
            field="shard_rows",
        )
    n_total = graph.num_vertices
    if stop_row is None:
        stop_row = n_total
    if not (0 <= start_row <= stop_row <= n_total):
        raise ConfigError(
            f"need 0 <= start_row <= stop_row <= n ({n_total}); got "
            f"start_row={start_row!r}, stop_row={stop_row!r}",
            field="start_row",
        )
    if start_row % shard_rows != 0:
        raise ConfigError(
            f"start_row must fall on a shard boundary (multiple of "
            f"{shard_rows}), got {start_row}",
            field="start_row",
        )
    if config is None:
        cfg = SolverConfig.from_kwargs(
            **_normalize_kwargs(dict(kwargs))
        )
    elif kwargs:
        cfg = config.with_overrides(**_normalize_kwargs(dict(kwargs)))
    else:
        cfg = config
    if cfg.parallel.backend != Backend.SERIAL.value:
        raise ConfigError(
            "the shard-streaming solve runs on the serial backend "
            f"(got {cfg.parallel.backend!r}); its whole point is the "
            "O(shard) memory bound of one worker over one buffer",
            field="parallel.backend",
        )

    spec = get_solver(cfg.algorithm.name)
    if not spec.store_buildable or spec.shard_hooks is None:
        raise ConfigError(
            f"solver {spec.name!r} does not support the shard-streaming "
            "solve (store_buildable is off)",
            field="algorithm.name",
        )
    if graph.has_negative_weights and not spec.negative_weights:
        raise NegativeWeightError(
            f"graph {graph.name or 'anonymous'!r} has negative arc "
            f"weights, which solver {spec.name!r} does not support"
        )
    # the spec decides how a row is produced: which graph the sweeps run
    # on (Johnson substitutes its reweighted graph), how one source's
    # row is filled, and any per-block post-processing
    hooks = spec.shard_hooks(graph, cfg)
    ordering_name = (
        cfg.algorithm.ordering
        if cfg.algorithm.ordering is not None
        else spec.ordering
    )
    n = graph.num_vertices
    degrees = degree_array(graph, cfg.algorithm.degree_kind)
    ordering_kwargs = {}
    if ordering_name == "selection":
        ordering_kwargs["ratio"] = cfg.algorithm.ratio
        ordering_kwargs["fast"] = n > 4000
    with _obs.span("apsp.ordering"):
        order_result = compute_order(
            ordering_name, degrees, num_threads=1, backend=Backend.SERIAL,
            **ordering_kwargs,
        )
    # position[v] = issue rank of vertex v under the configured ordering
    position = np.empty(n, dtype=np.int64)
    position[order_result.order] = np.arange(n, dtype=np.int64)

    shard_rows = min(shard_rows, max(1, n))
    buffer = np.empty((shard_rows, n), dtype=np.float64)
    for start in range(start_row, stop_row, shard_rows):
        k = min(shard_rows, stop_row - start, n - start)
        block = buffer[:k]
        block.fill(INF)
        state = _ShardState(block, start, n)
        sources = start + np.argsort(
            position[start:start + k], kind="stable"
        )
        with _obs.span("apsp.shard"):
            for s in sources:
                hooks.sweep_row(hooks.graph, int(s), state, cfg)
        if hooks.finalize is not None:
            hooks.finalize(start, block)
        _obs.counter_add("serve.store.shards_solved", 1)
        yield start, block


_register_sweep_family()

# importing these modules registers the non-sweep-family solvers; the
# imports sit below the registration machinery they depend on
from . import delta_stepping as _delta_stepping  # noqa: E402,F401
from . import johnson as _johnson  # noqa: E402,F401
