"""The unified APSP entry point: :func:`solve_apsp`.

Every algorithm of the paper is a (ordering, schedule) configuration of
the same two-phase pipeline — compute a source order, then run the
modified-Dijkstra sweep over it:

=============== ============ ================== =====================
algorithm       ordering     sweep schedule      paper reference
=============== ============ ================== =====================
``seq-basic``   none         (sequential)        Algorithm 2
``seq-opt``     selection    (sequential)        Algorithm 3
``paralg1``     none         dynamic-cyclic      §3.1 ParAlg1
``paralg2``     selection    dynamic-cyclic      Algorithm 4 ParAlg2
``parapsp``     multilists   dynamic-cyclic      Algorithm 8 ParAPSP
=============== ============ ================== =====================

Overridable knobs: the sweep ``schedule`` (Figure 1's study), the
``ordering`` (Figure 5 swaps ParBuckets/ParMax into ParAlg2), the queue
discipline, the degree kind and the Algorithm 3 ``ratio``.

Backends: ``serial`` and ``threads`` / ``process`` run for real (wall
clock); ``sim`` runs on a :class:`~repro.simx.MachineSpec` in virtual
time and is how the multi-thread figures are regenerated on this host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..graphs.degree import DegreeKind, degree_array
from ..obs import metrics as _obs
from ..order import compute_order, simulate_order
from ..simx.machine import MachineSpec, default_machine
from ..types import Backend, PhaseTimes, Schedule
from .costs import DEFAULT_COST_MODEL, DijkstraCostModel
from .simulate import simulate_sweep
from .state import APSPResult
from .sweep import run_sweep

__all__ = ["ALGORITHMS", "AlgorithmSpec", "solve_apsp", "algorithm_names"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Defaults that make one named algorithm out of the pipeline."""

    name: str
    ordering: str
    schedule: Schedule
    parallel: bool
    description: str


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            "seq-basic",
            ordering="none",
            schedule=Schedule.DYNAMIC,
            parallel=False,
            description="Peng et al. basic APSP (Algorithm 2), sequential",
        ),
        AlgorithmSpec(
            "seq-opt",
            ordering="selection",
            schedule=Schedule.DYNAMIC,
            parallel=False,
            description="Peng et al. optimized APSP (Algorithm 3), sequential",
        ),
        AlgorithmSpec(
            "paralg1",
            ordering="none",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="parallel basic APSP (§3.1)",
        ),
        AlgorithmSpec(
            "paralg2",
            ordering="selection",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="parallel optimized APSP, sequential ordering "
            "(Algorithm 4)",
        ),
        AlgorithmSpec(
            "parapsp",
            ordering="multilists",
            schedule=Schedule.DYNAMIC,
            parallel=True,
            description="ParAPSP: MultiLists ordering + dynamic-cyclic "
            "sweep (Algorithm 8)",
        ),
    )
}


def algorithm_names() -> Tuple[str, ...]:
    return tuple(ALGORITHMS)


def solve_apsp(
    graph: CSRGraph,
    *,
    algorithm: str = "parapsp",
    num_threads: int = 1,
    backend: "Backend | str" = Backend.SERIAL,
    schedule: "Schedule | str | None" = None,
    ordering: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
    queue: str = "fifo",
    ratio: float = 1.0,
    degree_kind: "DegreeKind | str" = DegreeKind.OUT,
    chunk: int = 1,
    use_flags: bool = True,
    block_size: "int | str | None" = None,
    kernel: str = "auto",
    cost_model: DijkstraCostModel = DEFAULT_COST_MODEL,
    trace: bool = False,
    fault_plan=None,
    on_worker_death: str = "raise",
    timeout: Optional[float] = None,
    max_retries: int = 3,
) -> APSPResult:
    """Solve all-pairs shortest paths; see the module docstring.

    Fault tolerance: ``fault_plan`` (a :class:`repro.faults.FaultPlan`)
    injects deterministic worker faults into the sweep phase;
    ``on_worker_death`` picks the recovery policy (``"raise"`` surfaces
    a :class:`~repro.exceptions.BackendError`, ``"retry"`` re-runs only
    the lost sources, reproducing the exact distances of a fault-free
    run).  ``timeout`` / ``max_retries`` bound each process round.  On
    the SIM backend faults replay in virtual time and the recovery
    phase is visible in the trace.

    Returns an :class:`~repro.core.state.APSPResult` whose ``dist`` is
    the exact APSP matrix regardless of algorithm, backend, schedule or
    thread count.

    ``block_size`` (an int, ``"auto"``, or ``None`` = unbatched) routes
    the sweep phase through the batched lockstep engine of
    :mod:`repro.core.batch`; ``kernel`` selects the blocked-kernel
    implementation.  The SIM backend models per-operation costs, which
    batching does not change (``OpCounts`` are identical by
    construction), so both knobs are ignored there.

    ``trace=True`` (SIM backend) makes both phases record per-event
    virtual timelines on ``sim_ordering`` / ``sim_dijkstra``, the input
    of the unified tracing layer (:mod:`repro.trace`).  Real backends
    ignore it — wall-clock tracing records :func:`repro.obs.span`
    sections through a :class:`repro.trace.TraceRecorder` instead.
    """
    if algorithm not in ALGORITHMS:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; known: {', '.join(ALGORITHMS)}"
        )
    if not 0.0 < ratio <= 1.0:
        raise AlgorithmError(
            f"ratio must be in (0, 1], got {ratio!r}"
        )
    if chunk < 1:
        raise AlgorithmError(
            f"chunk must be >= 1, got {chunk} (a non-positive chunk "
            "would make dynamic workers spin forever)"
        )
    if on_worker_death not in ("retry", "raise"):
        raise AlgorithmError(
            f"on_worker_death must be 'retry' or 'raise', "
            f"got {on_worker_death!r}"
        )
    spec = ALGORITHMS[algorithm]
    backend = Backend.coerce(backend)
    sched = Schedule.coerce(schedule) if schedule is not None else spec.schedule
    ordering_name = ordering if ordering is not None else spec.ordering
    if not spec.parallel and backend not in (Backend.SERIAL,):
        if backend is not Backend.SIM:
            raise AlgorithmError(
                f"{algorithm} is a sequential algorithm; use backend='serial'"
                " (or 'sim' for a virtual-time estimate at 1 thread)"
            )
        num_threads = 1
    if not spec.parallel:
        num_threads = 1

    n = graph.num_vertices
    degrees = degree_array(graph, degree_kind)
    ordering_kwargs = {}
    if ordering_name == "selection":
        ordering_kwargs["ratio"] = ratio
        # the faithful O(n²) loop is the measured artefact; for plain
        # solving at larger n the fast equivalent keeps things usable
        ordering_kwargs["fast"] = n > 4000

    if backend is Backend.SIM:
        mach = machine or default_machine(num_threads)
        with _obs.span("apsp.ordering"):
            order_result = simulate_order(
                ordering_name,
                degrees,
                mach,
                num_threads=num_threads,
                trace=trace,
                **ordering_kwargs,
            )
        with _obs.span("apsp.dijkstra"):
            sweep = simulate_sweep(
                graph,
                order_result.order,
                mach,
                num_threads=num_threads,
                schedule=sched,
                chunk=chunk,
                queue=queue,
                use_flags=use_flags,
                cost_model=cost_model,
                trace=trace,
                fault_plan=fault_plan,
            )
        ordering_time = (
            order_result.sim.makespan if order_result.sim is not None else 0.0
        )
        result = APSPResult(
            algorithm=algorithm,
            dist=sweep.dist,
            num_threads=num_threads,
            backend=backend.value,
            schedule=sched.value,
            order=order_result.order,
            ordering_method=order_result.method,
            phase_times=PhaseTimes(
                ordering=ordering_time, dijkstra=sweep.makespan
            ),
            ops=sweep.total_ops(),
            per_source_work=np.asarray(
                [cost_model.sweep_cost(c) for c in sweep.per_source]
            ),
            sim_ordering=order_result.sim,
            sim_dijkstra=sweep.outcome.result,
        )
        reg = _obs.get_registry()
        if reg is not None:
            for name, value in sweep.outcome.result.as_metrics(
                "sim.dijkstra"
            ).items():
                reg.gauge_set(name, value)
            if order_result.sim is not None:
                for name, value in order_result.sim.as_metrics(
                    "sim.ordering"
                ).items():
                    reg.gauge_set(name, value)
        return result

    # ---- real backends -------------------------------------------------
    t0 = time.perf_counter()
    with _obs.span("apsp.ordering"):
        order_result = compute_order(
            ordering_name,
            degrees,
            num_threads=num_threads,
            backend=(
                backend if backend is not Backend.PROCESS else Backend.SERIAL
            ),
            **ordering_kwargs,
        )
    ordering_seconds = time.perf_counter() - t0
    with _obs.span("apsp.dijkstra"):
        sweep = run_sweep(
            graph,
            order_result.order,
            backend=backend,
            num_threads=num_threads,
            schedule=sched,
            chunk=chunk,
            queue=queue,
            use_flags=use_flags,
            block_size=block_size,
            kernel=kernel,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            timeout=timeout,
            max_retries=max_retries,
        )
    extra: Dict[str, float] = {}
    if sweep.block_size is not None:
        extra["block_size"] = float(sweep.block_size)
    return APSPResult(
        algorithm=algorithm,
        dist=sweep.dist,
        num_threads=num_threads,
        backend=backend.value,
        schedule=sched.value,
        order=order_result.order,
        ordering_method=order_result.method,
        phase_times=PhaseTimes(
            ordering=ordering_seconds, dijkstra=sweep.elapsed_seconds
        ),
        ops=sweep.total_ops(),
        per_source_work=sweep.work_vector(cost_model),
        extra=extra,
    )
