"""Shortest-path reconstruction: predecessor tracking + path extraction.

The paper's algorithms return distances only.  Downstream graph-analysis
users usually need the actual paths, so this module extends the modified
Dijkstra with a predecessor matrix:

* edge relaxation ``D[s,v] = D[s,t] + L[t,v]`` sets ``pred[s,v] = t``;
* a row merge through a flagged vertex ``t`` — the subtle case — sets
  ``pred[s,v] = pred[t,v]``: the merged value ``D[s,t] + D[t,v]``
  describes the path *s ⇝ t ⇝ v*, whose last hop is exactly the last
  hop of t's own shortest path to v.  Because row t is final when it is
  merged, ``pred[t, :]`` is final too, so the copy is sound.

Following the same induction as the distance proof, the predecessor
matrix is consistent: walking ``pred`` backwards from any reachable
``v`` reaches ``s`` in at most n-1 steps with the recorded distance.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from ..exceptions import AlgorithmError
from ..graphs.csr import CSRGraph
from ..types import OpCounts
from .state import APSPState, new_state

__all__ = [
    "PathResult",
    "apsp_with_paths",
    "reconstruct_path",
    "verify_predecessors",
]

#: pred value for "no predecessor" (source itself or unreachable)
NO_PRED = -1


class PathResult:
    """APSP distances plus the predecessor matrix."""

    __slots__ = ("dist", "pred")

    def __init__(self, dist: np.ndarray, pred: np.ndarray) -> None:
        self.dist = dist
        self.pred = pred

    @property
    def n(self) -> int:
        return self.dist.shape[0]

    def path(self, source: int, target: int) -> Optional[List[int]]:
        """Vertex list from ``source`` to ``target`` (inclusive), or
        ``None`` when unreachable."""
        return reconstruct_path(self.pred, self.dist, source, target)


def _sssp_with_pred(
    graph: CSRGraph,
    source: int,
    state: APSPState,
    pred: np.ndarray,
) -> OpCounts:
    """One modified-Dijkstra sweep maintaining ``pred[source, :]``.

    Mirrors :func:`repro.core.modified_dijkstra.modified_dijkstra_sssp`'s
    FIFO variant, with the two predecessor rules described in the module
    docstring.
    """
    n = state.n
    counts = OpCounts()
    dist = state.dist
    ds = dist[source]
    ps = pred[source]
    ds[source] = 0.0
    flag = state.flag
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    in_queue = np.zeros(n, dtype=bool)
    q: deque = deque([source])
    in_queue[source] = True
    while q:
        t = q.popleft()
        in_queue[t] = False
        counts.pops += 1
        if t != source and flag[t]:
            counts.row_merges += 1
            counts.merge_comparisons += n
            counts.flag_hits += 1
            cand = ds[t] + dist[t]
            mask = cand < ds
            if mask.any():
                np.copyto(ds, cand, where=mask)
                # inherit t's final last-hops for every improved vertex
                np.copyto(ps, pred[t], where=mask)
            continue
        base = ds[t]
        lo, hi = indptr[t], indptr[t + 1]
        nbrs = indices[lo:hi]
        counts.edge_relaxations += int(nbrs.size)
        if nbrs.size:
            cand = base + weights[lo:hi]
            mask = cand < ds[nbrs]
            k = int(np.count_nonzero(mask))
            counts.edge_improvements += k
            if k:
                targets = nbrs[mask]
                ds[targets] = cand[mask]
                ps[targets] = t
                for v in targets:
                    if not in_queue[v]:
                        in_queue[v] = True
                        q.append(int(v))
    flag[source] = 1
    return counts


def apsp_with_paths(
    graph: CSRGraph,
    *,
    order: Optional[np.ndarray] = None,
) -> PathResult:
    """Solve APSP with predecessor tracking (sequential).

    ``order`` defaults to the descending-degree order (the optimized
    algorithm); any permutation gives the same distances.
    """
    n = graph.num_vertices
    if order is None:
        from ..graphs.degree import degree_array
        from ..order import exact_bucket_order

        order = exact_bucket_order(degree_array(graph)).order
    order = np.asarray(order, dtype=np.int64)
    if order.shape != (n,):
        raise AlgorithmError(f"order must cover all {n} sources")
    state = new_state(n)
    pred = np.full((n, n), NO_PRED, dtype=np.int64)
    for s in order:
        _sssp_with_pred(graph, int(s), state, pred)
    return PathResult(state.dist, pred)


def reconstruct_path(
    pred: np.ndarray,
    dist: np.ndarray,
    source: int,
    target: int,
) -> Optional[List[int]]:
    """Walk the predecessor matrix backwards from ``target``."""
    n = pred.shape[0]
    if not (0 <= source < n and 0 <= target < n):
        raise AlgorithmError("source/target out of range")
    if source == target:
        return [source]
    if not np.isfinite(dist[source, target]):
        return None
    path = [target]
    v = target
    for _ in range(n):
        v = int(pred[source, v])
        if v == NO_PRED:
            raise AlgorithmError(
                f"broken predecessor chain for ({source}, {target})"
            )
        path.append(v)
        if v == source:
            return path[::-1]
    raise AlgorithmError(
        f"predecessor cycle detected for ({source}, {target})"
    )


def verify_predecessors(
    graph: CSRGraph, result: PathResult, *, sample: Optional[int] = None
) -> None:
    """Check the predecessor matrix against the distance matrix.

    For every (sampled) reachable pair, the reconstructed path must be
    a genuine graph walk whose edge weights sum to the recorded
    distance.  Raises :class:`AlgorithmError` on any inconsistency.
    """
    n = result.n
    rng = np.random.default_rng(0)
    sources = (
        range(n)
        if sample is None
        else rng.choice(n, size=min(sample, n), replace=False)
    )
    weight_of = {}
    for u, v, w in graph.iter_arcs():
        weight_of[(u, v)] = w
    for s in sources:
        for t in range(n):
            d = result.dist[s, t]
            if not np.isfinite(d) or s == t:
                continue
            path = result.path(int(s), t)
            assert path is not None
            total = 0.0
            for a, b in zip(path, path[1:]):
                if (a, b) not in weight_of:
                    raise AlgorithmError(
                        f"path for ({s}, {t}) uses non-edge ({a}, {b})"
                    )
                total += weight_of[(a, b)]
            if not np.isclose(total, d, rtol=1e-9, atol=1e-9):
                raise AlgorithmError(
                    f"path weight {total} != distance {d} for ({s}, {t})"
                )
