"""Shared APSP state: the distance matrix, the flag vector, results.

Algorithm 2 line 2–7: ``D[u, v] = ∞`` for every pair, ``flag[i] = 0``
for every vertex.  The diagonal is set to zero lazily by each SSSP run
(Algorithm 1 line 2), but initialising it here is equivalent and lets
validation treat a fresh state as "no paths known yet".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import AlgorithmError
from ..simx.trace import SimResult
from ..types import INF, OpCounts, PhaseTimes

__all__ = ["APSPState", "APSPResult", "new_state"]


@dataclass
class APSPState:
    """Mutable working state shared by all SSSP sweeps of one APSP run."""

    #: ``float64[n, n]`` distance matrix; row s is the SSSP result from s
    dist: np.ndarray
    #: ``uint8[n]``; ``flag[t] == 1`` means row t is final (Algorithm 1
    #: line 21) and may be merged by later runs
    flag: np.ndarray

    @property
    def n(self) -> int:
        return self.flag.size

    def reset(self) -> None:
        """Back to the Algorithm 2 initial state."""
        self.dist.fill(INF)
        np.fill_diagonal(self.dist, 0.0)
        self.flag.fill(0)


def new_state(n: int, *, dist_buffer: Optional[np.ndarray] = None) -> APSPState:
    """Fresh state for an ``n``-vertex graph.

    ``dist_buffer`` lets the process backend supply a shared-memory
    array; it must be ``float64`` C-contiguous of shape ``(n, n)``.
    """
    if n < 0:
        raise AlgorithmError(f"vertex count must be >= 0, got {n}")
    if dist_buffer is None:
        dist = np.empty((n, n), dtype=np.float64)
    else:
        if dist_buffer.shape != (n, n) or dist_buffer.dtype != np.float64:
            raise AlgorithmError(
                f"dist buffer must be float64[{n},{n}], got "
                f"{dist_buffer.dtype}{dist_buffer.shape}"
            )
        dist = dist_buffer
    state = APSPState(dist=dist, flag=np.zeros(n, dtype=np.uint8))
    state.reset()
    return state


@dataclass
class APSPResult:
    """Everything a solver run reports.

    ``dist`` is the exact APSP matrix (identical across algorithms and
    backends — the paper's §5 exactness claim, asserted in tests).
    ``phase_times`` is wall-clock seconds for real backends and virtual
    work units for the SIM backend; ``sim_ordering`` / ``sim_dijkstra``
    carry the detailed simulated traces when applicable.
    """

    algorithm: str
    dist: np.ndarray
    num_threads: int
    backend: str
    schedule: Optional[str] = None
    order: Optional[np.ndarray] = None
    ordering_method: Optional[str] = None
    phase_times: PhaseTimes = field(default_factory=PhaseTimes)
    #: aggregated operation counters over all SSSP sweeps
    ops: OpCounts = field(default_factory=OpCounts)
    #: per-source total work (cost-model units), aligned with vertex id
    per_source_work: Optional[np.ndarray] = None
    sim_ordering: Optional[SimResult] = None
    sim_dijkstra: Optional[SimResult] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.dist.shape[0]

    @property
    def total_time(self) -> float:
        return self.phase_times.total

    def reachable_pairs(self) -> int:
        """Number of finite entries of D (including the diagonal)."""
        return int(np.isfinite(self.dist).sum())

    def summary(self) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "threads": float(self.num_threads),
            "ordering_time": self.phase_times.ordering,
            "dijkstra_time": self.phase_times.dijkstra,
            "total_time": self.total_time,
            "total_work": float(self.ops.total_work()),
        }
