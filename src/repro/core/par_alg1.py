"""**ParAlg1** — the parallel basic APSP algorithm (§3.1).

The basic algorithm's SSSP loop parallelised with an OpenMP-style
``parallel for``: no ordering phase at all, every source is an
independent task.  The paper reports near-linear speedup — there is no
sequential fraction — but absolute runtimes 2–4× behind ParAlg2/ParAPSP
because the reuse pattern is degree-blind.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.csr import CSRGraph
from ..simx.machine import MachineSpec
from ..types import Backend, Schedule
from .state import APSPResult
from .runner import solve_apsp

__all__ = ["par_alg1"]


def par_alg1(
    graph: CSRGraph,
    *,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.THREADS,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    machine: Optional[MachineSpec] = None,
    queue: str = "fifo",
    block_size: "int | str | None" = None,
    kernel: str = "auto",
) -> APSPResult:
    """Run ParAlg1 with ``num_threads`` workers.

    ``block_size`` / ``kernel`` route the sweep through the batched
    engine (see :func:`repro.core.runner.solve_apsp`).
    """
    return solve_apsp(
        graph,
        algorithm="paralg1",
        num_threads=num_threads,
        backend=backend,
        schedule=schedule,
        machine=machine,
        queue=queue,
        block_size=block_size,
        kernel=kernel,
    )
