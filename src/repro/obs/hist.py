"""Mergeable log-bucketed streaming histograms with exemplars.

:class:`LatencyHistogram` is the distribution counterpart of the
counter/gauge machinery in :mod:`repro.obs.metrics`: O(1) per record,
O(buckets) per snapshot, and **mergeable** (per-server or per-window
histograms fold into one without revisiting samples), which is what the
serving stack needs to report p50/p99 without materialising every
latency the way :class:`~repro.serve.replay.ReplayResult` historically
did.

Bucket schema (DDSketch-style geometric buckets)
------------------------------------------------

Bucket ``i`` covers ``[v_min * gamma**i, v_min * gamma**(i + 1))``; a
positive value indexes in O(1) via ``floor(log(v / v_min) / log(gamma))``
and is *estimated* by its bucket's geometric midpoint
``v_min * gamma**(i + 0.5)``.  Any value inside the bucket is therefore
within a **certified relative error** of

    ``rel_error = sqrt(gamma) - 1``

of its estimate (≈ 9.5% at the default ``gamma = 1.2``), and
:meth:`LatencyHistogram.quantile` — which mirrors numpy's linear
interpolation between the bucket estimates of the two neighbouring
ranks — inherits the same bound against the exact
``np.percentile`` of the raw samples: the exact percentile is a convex
combination of two samples, the estimate is the same convex combination
of their bucket estimates, and each estimate is within ``rel_error``
relative of its sample.  The property suite in ``tests/obs/test_hist.py``
asserts exactly this.

Zeros (and degraded answers reported at zero cost) go to a dedicated
``zero_count`` and are estimated exactly.  Values outside
``[v_min, v_min * gamma**num_buckets)`` clamp into the edge buckets and
are counted in ``clamped_low`` / ``clamped_high`` — outside the clamp
counters being zero, the certificate does not hold, so consumers that
claim the bound (the serve bench) assert them zero.

Exemplars
---------

Each bucket optionally keeps one **exemplar** — the ``(value,
trace_id)`` pair of the largest value recorded into it (ties broken by
the lexicographically greatest trace id).  That rule is commutative and
associative, so exemplars are identical whatever order samples were
recorded or histograms merged in — "why is p99 high?" answers with a
concrete request trace id to feed ``repro-apsp monitor`` or
:func:`repro.serve.telemetry.export_request_trace`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ValidationError

__all__ = ["HIST_SCHEMA_VERSION", "LatencyHistogram"]

#: bump when the snapshot layout changes incompatibly
HIST_SCHEMA_VERSION = "repro.obs.hist/1"

#: default bucket schema: 1e-7 s .. 1e-7 * 1.2**128 ≈ 1371 s, covering
#: every virtual and wall latency the serving stack produces with a
#: certified relative error of sqrt(1.2) - 1 ≈ 9.5%
DEFAULT_V_MIN = 1e-7
DEFAULT_GAMMA = 1.2
DEFAULT_NUM_BUCKETS = 128


class LatencyHistogram:
    """Fixed-schema streaming histogram; see the module docstring."""

    __slots__ = (
        "v_min",
        "gamma",
        "num_buckets",
        "_log_gamma",
        "count",
        "zero_count",
        "clamped_low",
        "clamped_high",
        "counts",
        "exemplars",
    )

    def __init__(
        self,
        *,
        v_min: float = DEFAULT_V_MIN,
        gamma: float = DEFAULT_GAMMA,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if not (isinstance(v_min, (int, float)) and v_min > 0
                and math.isfinite(v_min)):
            raise ValidationError(
                f"v_min must be a finite number > 0, got {v_min!r}"
            )
        if not (isinstance(gamma, (int, float)) and gamma > 1
                and math.isfinite(gamma)):
            raise ValidationError(
                f"gamma must be a finite number > 1, got {gamma!r}"
            )
        if not isinstance(num_buckets, int) or isinstance(num_buckets, bool) \
                or num_buckets < 1:
            raise ValidationError(
                f"num_buckets must be an int >= 1, got {num_buckets!r}"
            )
        self.v_min = float(v_min)
        self.gamma = float(gamma)
        self.num_buckets = num_buckets
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.zero_count = 0
        self.clamped_low = 0
        self.clamped_high = 0
        self.counts: List[int] = [0] * num_buckets
        #: bucket index -> (value, trace_id) of the max-value exemplar
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    # -- schema ----------------------------------------------------------

    @property
    def rel_error(self) -> float:
        """Certified relative error of any in-range estimate."""
        return math.sqrt(self.gamma) - 1.0

    def same_schema(self, other: "LatencyHistogram") -> bool:
        return (
            self.v_min == other.v_min
            and self.gamma == other.gamma
            and self.num_buckets == other.num_buckets
        )

    def bucket_index(self, value: float) -> int:
        """O(1) bucket of a positive value (clamped into range)."""
        index = math.floor(
            math.log(value / self.v_min) / self._log_gamma
        )
        return min(max(index, 0), self.num_buckets - 1)

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        return (
            self.v_min * self.gamma**index,
            self.v_min * self.gamma ** (index + 1),
        )

    def bucket_estimate(self, index: int) -> float:
        """Geometric midpoint — within ``rel_error`` of any member."""
        return self.v_min * self.gamma ** (index + 0.5)

    # -- recording -------------------------------------------------------

    def record(self, value: float, trace_id: Optional[str] = None) -> None:
        """O(1) record of one sample, optionally tagged with a trace id."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(
                f"histogram values must be numeric, got {value!r}"
            )
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ValidationError(
                f"histogram values must be finite and >= 0, got {value!r}"
            )
        self.count += 1
        if value == 0.0:
            self.zero_count += 1
            return
        index = self.bucket_index(value)
        if value < self.v_min:
            self.clamped_low += 1
        elif value >= self.v_min * self.gamma**self.num_buckets:
            self.clamped_high += 1
        self.counts[index] += 1
        if trace_id is not None:
            self._offer_exemplar(index, value, str(trace_id))

    def _offer_exemplar(self, index: int, value: float,
                        trace_id: str) -> None:
        # max by (value, trace_id): commutative + associative, so the
        # surviving exemplar is independent of record/merge order
        current = self.exemplars.get(index)
        if current is None or (value, trace_id) > current:
            self.exemplars[index] = (value, trace_id)

    # -- merging ---------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Return a new histogram = self + other (schemas must match)."""
        if not isinstance(other, LatencyHistogram):
            raise ValidationError(
                f"can only merge LatencyHistogram, got {type(other).__name__}"
            )
        if not self.same_schema(other):
            raise ValidationError(
                "cannot merge histograms with different bucket schemas: "
                f"(v_min={self.v_min:g}, gamma={self.gamma:g}, "
                f"buckets={self.num_buckets}) vs "
                f"(v_min={other.v_min:g}, gamma={other.gamma:g}, "
                f"buckets={other.num_buckets})"
            )
        out = LatencyHistogram(
            v_min=self.v_min, gamma=self.gamma, num_buckets=self.num_buckets
        )
        out.count = self.count + other.count
        out.zero_count = self.zero_count + other.zero_count
        out.clamped_low = self.clamped_low + other.clamped_low
        out.clamped_high = self.clamped_high + other.clamped_high
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        for source in (self.exemplars, other.exemplars):
            for index, (value, trace_id) in source.items():
                out._offer_exemplar(index, value, trace_id)
        return out

    # -- quantiles -------------------------------------------------------

    def _estimate_at_rank(self, rank: int) -> float:
        """Estimated value of the sample at sorted rank ``rank``."""
        if rank < self.zero_count:
            return 0.0
        remaining = rank - self.zero_count
        for index, bucket_count in enumerate(self.counts):
            if remaining < bucket_count:
                return self.bucket_estimate(index)
            remaining -= bucket_count
        return self.bucket_estimate(self.num_buckets - 1)

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (``q`` in [0, 100]).

        Mirrors ``np.percentile``'s linear interpolation — the rank
        ``k = (count - 1) * q / 100`` interpolates between the bucket
        estimates of ranks ``floor(k)`` and ``ceil(k)`` — so (absent
        clamping) the result is within ``rel_error`` *relative* of the
        exact percentile of the recorded samples.
        """
        if isinstance(q, bool) or not isinstance(q, (int, float)) \
                or not 0 <= q <= 100:
            raise ValidationError(
                f"quantile q must be a number in [0, 100], got {q!r}"
            )
        if self.count == 0:
            return 0.0
        k = (self.count - 1) * (float(q) / 100.0)
        lo_rank = math.floor(k)
        hi_rank = math.ceil(k)
        lo = self._estimate_at_rank(lo_rank)
        if hi_rank == lo_rank:
            return lo
        hi = self._estimate_at_rank(hi_rank)
        return lo + (hi - lo) * (k - lo_rank)

    def count_le(self, threshold: float) -> int:
        """Samples estimated ``<= threshold`` (zeros always count).

        A whole bucket counts iff its *estimate* is within the
        threshold — consistent with :meth:`quantile`, so a threshold is
        effectively measured to the same ``rel_error`` certificate.
        Deterministic whatever order samples arrived in.
        """
        if isinstance(threshold, bool) \
                or not isinstance(threshold, (int, float)):
            raise ValidationError(
                f"threshold must be numeric, got {threshold!r}"
            )
        total = self.zero_count
        for index, bucket_count in enumerate(self.counts):
            if bucket_count and self.bucket_estimate(index) <= threshold:
                total += bucket_count
        return total

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict view (see :data:`HIST_SCHEMA_VERSION`).

        Buckets and exemplars are keyed by the stringified bucket index
        in increasing order; two histograms with the same recorded
        multiset produce byte-identical JSON dumps.
        """
        return {
            "schema": HIST_SCHEMA_VERSION,
            "v_min": self.v_min,
            "gamma": self.gamma,
            "num_buckets": self.num_buckets,
            "rel_error": self.rel_error,
            "count": self.count,
            "zero_count": self.zero_count,
            "clamped_low": self.clamped_low,
            "clamped_high": self.clamped_high,
            "buckets": {
                str(index): value
                for index, value in enumerate(self.counts)
                if value
            },
            "exemplars": {
                str(index): {
                    "value": self.exemplars[index][0],
                    "trace_id": self.exemplars[index][1],
                }
                for index in sorted(self.exemplars)
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        return self.snapshot()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyHistogram":
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"histogram snapshot must be a mapping, got "
                f"{type(data).__name__}"
            )
        if data.get("schema") != HIST_SCHEMA_VERSION:
            raise ValidationError(
                f"unknown histogram schema {data.get('schema')!r}; "
                f"expected {HIST_SCHEMA_VERSION!r}"
            )
        out = cls(
            v_min=data["v_min"],
            gamma=data["gamma"],
            num_buckets=data["num_buckets"],
        )
        out.count = int(data["count"])
        out.zero_count = int(data["zero_count"])
        out.clamped_low = int(data.get("clamped_low", 0))
        out.clamped_high = int(data.get("clamped_high", 0))
        for key, value in data.get("buckets", {}).items():
            out.counts[int(key)] = int(value)
        for key, exemplar in data.get("exemplars", {}).items():
            out.exemplars[int(key)] = (
                float(exemplar["value"]),
                str(exemplar["trace_id"]),
            )
        return out

    def flat(self, prefix: str) -> Dict[str, float]:
        """Flat numeric dict for a BENCH artifact section.

        Bucket counts come out as ``{prefix}.bucket.NNN`` (non-empty
        buckets only), plus the totals — everything an exact regress
        gate needs to pin the whole virtual latency distribution.
        """
        out: Dict[str, float] = {
            f"{prefix}.count": float(self.count),
            f"{prefix}.zero_count": float(self.zero_count),
            f"{prefix}.clamped_low": float(self.clamped_low),
            f"{prefix}.clamped_high": float(self.clamped_high),
        }
        for index, value in enumerate(self.counts):
            if value:
                out[f"{prefix}.bucket.{index:03d}"] = float(value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"zero={self.zero_count}, gamma={self.gamma:g}, "
            f"rel_error={self.rel_error:.3f})"
        )
