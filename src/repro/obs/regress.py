"""Artifact comparator: the CI perf gate.

``python -m repro.obs.regress baseline.json current.json`` diffs two
``BENCH_*.json`` artifacts and exits non-zero on a regression:

* **params**  — workload identity must match exactly; artifacts from
  different solvers/configs are *incomparable*, so any identity mismatch
  fails with a single clear message (per-key detail in the notes) and
  skips the counter/timing diffs that could never agree anyway;
* **counters** — operation counts are machine-independent and must match
  *exactly*; more merges/relaxations than the baseline means the
  algorithm got algorithmically worse, fewer means the baseline is stale
  (both fail, so baselines stay honest);
* **timings** — ``virtual.*`` entries (deterministic simulator time) may
  only exceed the baseline by ``--rtol`` (default 10%); ``wall.*``
  entries are host-dependent noise and are ignored unless
  ``--include-wall`` is given;
* **trace_summary** — contention / idle / overhead *fractions* from the
  unified trace analyzer may only exceed the baseline by ``--trace-atol``
  (absolute, default 0.02 — fractions live in [0, 1] so a relative
  tolerance would be meaningless near zero); the remaining keys
  (makespans, critical-path composition, hotspot totals) are reported
  as notes;
* **faults** — the deterministic fault-injection section (schema
  ``/3``): injected event counts are exact (the plan is seeded, so a
  changed death/requeue count means the recovery machinery changed
  behaviour); ``faults.virtual.*`` recovery timings may only exceed the
  baseline by ``--rtol``, like ``virtual.*`` timings;
* **serve** — the query-serving traffic bench section (schema ``/5``):
  event counts (shard loads, coalesced requests, batches, degraded /
  shed requests — the replay is a seeded trace through a deterministic
  virtual-time model) are exact; ``*_hit_rate`` and ``*_speedup`` keys
  gate *downward* with ``--serve-atol`` (a drop in cache hit rate or in
  the optimised-vs-naive speedup is the regression; higher is better);
  ``*_ms`` virtual-latency keys gate upward with ``--rtol`` like
  ``virtual.*`` timings; ``*store_bytes`` / ``*bytes_loaded`` byte
  totals gate upward with ``--rtol`` (a fatter store or more bytes
  moved per replay is the regression); ``*max_abs_error`` certified /
  observed error bounds gate *exactly* — a silently raised bound is a
  correctness regression, not a perf tradeoff;
* **serve_latency_hist** — the virtual replay's streaming latency
  histogram (schema ``/6``): **every** key gates exactly.  The replay
  is deterministic, so each log-bucket count is as reproducible as an
  op counter — one bucket moving means the latency distribution
  changed, which either is a deliberate perf change (regenerate the
  baseline) or a bug;
* **serve_slo** — the SLO report (schema ``/6``): keys ending
  ``burn_rate`` gate *upward-only with no tolerance* (a deterministic
  replay burning its error budget faster is a regression; burning
  slower is an improvement and only noted); every other key — the
  objective's own parameters and the violation counts — gates exactly;
* **dist** — the multi-node bench section (schema ``/8``): the routed
  answer fingerprint and every failover / node-loss / recovery event
  count gate *exactly* (the cluster replay is seeded and virtual-timed,
  so a changed failover count means the routing machinery changed
  behaviour); ``*_ms`` routed-serving percentiles and the
  ``network_bytes`` / makespan volume keys gate *upward* with
  ``--rtol`` — more bytes over the simulated network or a slower hot
  shard after rebalancing is the regression the section exists to
  catch;
* **update** — the incremental-update bench section (schema ``/7``):
  everything in it is a pure function of the pinned graph and update
  batch (dirty-shard counts, re-solved rows, store fingerprints), so
  every key gates exactly; ``update.cost_ratio`` is additionally
  flagged when it merely *rises* — a less incremental update is the
  regression the section exists to catch;
* **kernel consistency** — artifacts that carry ``kernel.*`` counters
  must satisfy the cross-layer invariants tying kernel-call accounting
  to the per-source ``ops.*`` totals (see
  :func:`check_kernel_consistency`), so a kernel refactor cannot
  silently desync the cost model;
* **env / gauges / spans** — reported, never gated.

Exit codes: 0 = no regression, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from .artifact import load_artifact, validate_artifact

__all__ = ["check_kernel_consistency", "compare_artifacts", "main"]

#: timing keys with this prefix are host wall-clock and off by default
WALL_PREFIX = "wall."

#: trace_summary keys with these suffixes are gated (absolute, upward):
#: more lock-wait, more scheduler idle or more overhead is a regression
TRACE_GATED_SUFFIXES = (
    "lock_wait_fraction",
    "idle_fraction",
    "overhead_fraction",
)

#: faults keys with this prefix are virtual recovery timings (rtol,
#: upward); every other faults key is an exact-gated event count
FAULT_TIMING_PREFIX = "faults.virtual."

#: serve keys with these suffixes gate downward (higher is better,
#: a drop past ``--serve-atol`` is the regression)
SERVE_DOWNWARD_SUFFIXES = ("hit_rate", "speedup")

#: serve keys with this suffix are virtual latencies (rtol, upward);
#: remaining serve keys are exact-gated replay event counts
SERVE_LATENCY_SUFFIX = "_ms"

#: serve byte totals (store size, bytes moved per replay) gate upward
#: with ``--rtol`` — a fatter store or more bytes loaded undoes the
#: codec's whole point
SERVE_BYTES_SUFFIXES = ("store_bytes", "bytes_loaded")

#: serve certified/observed error bounds gate *exactly*: the bound is
#: part of the answer contract, so a silently raised bound is a
#: correctness regression, not a perf tradeoff
SERVE_ERROR_SUFFIX = "max_abs_error"

#: serve_slo keys with this suffix gate upward-only with no tolerance
#: (virtual replay burn rates are deterministic); all other serve_slo
#: keys and every serve_latency_hist key gate exactly
SLO_BURN_SUFFIX = "burn_rate"

#: dist keys with these suffixes gate upward with ``--rtol``: routed
#: percentile latencies, simulated network volume and cluster-build
#: makespans are virtual-time magnitudes, not event counts
DIST_UPWARD_SUFFIXES = ("_ms", "network_bytes", "makespan", "_us")

#: the update section's headline ratio: exact-gated like the rest of
#: the section, but its failure message calls out the direction — a
#: higher ratio means updates got *less* incremental
UPDATE_COST_KEY = "update.cost_ratio"


def check_kernel_consistency(
    counters: Mapping[str, float],
) -> List[str]:
    """Cross-check ``kernel.*`` call accounting against ``ops.*`` totals.

    The row kernels and the blocked kernels instrument the *same
    logical operations* that the per-source ``OpCounts`` record, so on
    any artifact that carries both families the following must hold:

    * every row merge went through exactly one kernel call::

        kernel.merge_row.calls + kernel.batch.merge.rows
            == ops.row_merges

    * every attempted arc relaxation was issued by exactly one kernel::

        kernel.relax.attempted + kernel.batch.relax.attempted
            == ops.edge_relaxations

      and likewise for the improved counts vs
      ``ops.edge_improvements``;

    * every relax event corresponds to one non-merge pop::

        kernel.relax.calls + kernel.batch.relax.segments
            <= ops.pops - ops.row_merges

      (equality for the FIFO discipline; the heap's lazy deletion pops
      stale entries that trigger no kernel call, hence ``<=``).

    Artifacts without ``kernel.*`` counters (instrumentation disabled,
    or pre-dating the kernel layer) are skipped.  Returns a list of
    human-readable violations (empty = consistent).
    """
    if not any(key.startswith("kernel.") for key in counters):
        return []

    def got(key: str) -> float:
        return counters.get(key, 0)

    problems: List[str] = []

    def require(label: str, actual: float, op_key: str) -> None:
        if op_key not in counters:
            return
        expected = counters[op_key]
        if actual != expected:
            problems.append(
                f"kernel consistency: {label} = {actual:g} but "
                f"{op_key} = {expected:g} (must be equal)"
            )

    require(
        "kernel.merge_row.calls + kernel.batch.merge.rows",
        got("kernel.merge_row.calls") + got("kernel.batch.merge.rows"),
        "ops.row_merges",
    )
    require(
        "kernel.relax.attempted + kernel.batch.relax.attempted",
        got("kernel.relax.attempted") + got("kernel.batch.relax.attempted"),
        "ops.edge_relaxations",
    )
    require(
        "kernel.relax.improved + kernel.batch.relax.improved",
        got("kernel.relax.improved") + got("kernel.batch.relax.improved"),
        "ops.edge_improvements",
    )
    if "ops.pops" in counters and "ops.row_merges" in counters:
        relax_events = got("kernel.relax.calls") + got(
            "kernel.batch.relax.segments"
        )
        budget = counters["ops.pops"] - counters["ops.row_merges"]
        if relax_events > budget:
            problems.append(
                "kernel consistency: kernel.relax.calls + "
                f"kernel.batch.relax.segments = {relax_events:g} exceeds "
                f"ops.pops - ops.row_merges = {budget:g}"
            )
    return problems


def compare_artifacts(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    rtol: float = 0.10,
    include_wall: bool = False,
    ignore: Sequence[str] = (),
    trace_atol: float = 0.02,
    serve_atol: float = 0.02,
) -> Tuple[List[str], List[str]]:
    """Compare two artifacts; returns ``(regressions, notes)``.

    ``ignore`` lists counter/timing/param keys excluded from gating
    (still mentioned in the notes so nothing silently disappears).
    """
    regressions: List[str] = []
    notes: List[str] = []
    ignored = set(ignore)

    for art, label in ((baseline, "baseline"), (current, "current")):
        problems = validate_artifact(art)
        if problems:
            raise ValueError(f"{label} artifact invalid: "
                             + "; ".join(problems))

    if baseline["schema"] != current["schema"]:
        raise ValueError(
            f"schema mismatch: baseline {baseline['schema']!r} "
            f"vs current {current['schema']!r}"
        )

    mismatched = _compare_params(
        baseline["params"], current["params"], ignored, notes
    )
    if mismatched:
        # Different solver / workload identity: every downstream section
        # (counters, virtual timings, fault and serve replays) is a
        # function of those params, so key-by-key diffs would drown the
        # real problem in mismatches that can never agree.  Fail with
        # one actionable message instead.
        regressions.append(
            "artifacts come from different solver configurations "
            f"(params differ: {', '.join(mismatched)}); counters from "
            "different configs can never match — regenerate the baseline "
            "with the same algorithm/backend/workload as the current run"
        )
        notes.append(
            "counters/timings/trace/faults/serve comparison skipped: "
            "artifacts are not comparable"
        )
        return regressions, notes
    _compare_counters(
        baseline["counters"], current["counters"], ignored, regressions, notes
    )
    for art, label in ((baseline, "baseline"), (current, "current")):
        regressions.extend(
            f"{label}: {problem}"
            for problem in check_kernel_consistency(art["counters"])
        )
    _compare_timings(
        baseline["timings"],
        current["timings"],
        rtol,
        include_wall,
        ignored,
        regressions,
        notes,
    )
    _compare_trace_summary(
        baseline.get("trace_summary"),
        current.get("trace_summary"),
        trace_atol,
        ignored,
        regressions,
        notes,
    )
    _compare_faults(
        baseline.get("faults"),
        current.get("faults"),
        rtol,
        ignored,
        regressions,
        notes,
    )
    _compare_serve(
        baseline.get("serve"),
        current.get("serve"),
        rtol,
        serve_atol,
        ignored,
        regressions,
        notes,
    )
    _compare_serve_hist(
        baseline.get("serve_latency_hist"),
        current.get("serve_latency_hist"),
        ignored,
        regressions,
        notes,
    )
    _compare_serve_slo(
        baseline.get("serve_slo"),
        current.get("serve_slo"),
        ignored,
        regressions,
        notes,
    )
    _compare_update(
        baseline.get("update"),
        current.get("update"),
        ignored,
        regressions,
        notes,
    )
    _compare_dist(
        baseline.get("dist"),
        current.get("dist"),
        rtol,
        ignored,
        regressions,
        notes,
    )

    for name, value in sorted(current.get("gauges", {}).items()):
        base = baseline.get("gauges", {}).get(name)
        if base is not None and base != value:
            notes.append(f"gauge {name}: {base:g} -> {value:g}")
    return regressions, notes


def _compare_params(
    base: Mapping[str, Any],
    cur: Mapping[str, Any],
    ignored: set,
    notes: List[str],
) -> List[str]:
    """Check workload identity; returns the mismatched param keys.

    Per-key detail goes to the notes — the caller folds any mismatch
    into one summary regression, because two artifacts from different
    configs are *incomparable*, not "wrong on every counter".
    """
    mismatched: List[str] = []
    for key in sorted(set(base) | set(cur)):
        if key in ignored:
            notes.append(f"param {key}: ignored")
            continue
        if key not in cur:
            mismatched.append(key)
            notes.append(f"param {key} missing from current artifact")
        elif key not in base:
            notes.append(f"param {key} new in current: {cur[key]!r}")
        elif base[key] != cur[key]:
            mismatched.append(key)
            notes.append(
                f"param {key}: baseline {base[key]!r} vs "
                f"current {cur[key]!r}"
            )
    return mismatched


def _compare_counters(
    base: Mapping[str, float],
    cur: Mapping[str, float],
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    for key in sorted(base):
        if key in ignored:
            notes.append(f"counter {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"counter {key} missing from current artifact")
            continue
        if base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"counter {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "op counts must match the baseline exactly)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"counter {key} new in current: {cur[key]:g}")


def _compare_timings(
    base: Mapping[str, float],
    cur: Mapping[str, float],
    rtol: float,
    include_wall: bool,
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    for key in sorted(base):
        is_wall = key.startswith(WALL_PREFIX)
        if key in ignored or (is_wall and not include_wall):
            if key in cur:
                notes.append(
                    f"timing {key}: {base[key]:g} -> {cur[key]:g} (not gated)"
                )
            continue
        if key not in cur:
            regressions.append(f"timing {key} missing from current artifact")
            continue
        limit = base[key] * (1.0 + rtol)
        if cur[key] > limit:
            pct = (
                (cur[key] - base[key]) / base[key] * 100.0
                if base[key]
                else float("inf")
            )
            regressions.append(
                f"timing {key}: {base[key]:g} -> {cur[key]:g} "
                f"(+{pct:.1f}%, tolerance {rtol:.0%})"
            )
        else:
            notes.append(f"timing {key}: {base[key]:g} -> {cur[key]:g} (ok)")


def _compare_trace_summary(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    atol: float,
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the unified-trace attribution fractions.

    Only the *fraction* families in :data:`TRACE_GATED_SUFFIXES` gate,
    and only upward (contention/idle/overhead growing past the baseline
    by more than ``atol``); a drop is an improvement and is noted.
    Absolute makespans and critical-path lengths shift with workload
    knobs and are note-only, like ``wall.*`` timings.
    """
    if base is None:
        if cur:
            notes.append(
                "trace_summary new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "trace_summary present in baseline but missing from current "
            "artifact (tracing disabled?)"
        )
        return
    for key in sorted(base):
        gated = key.endswith(TRACE_GATED_SUFFIXES)
        if key in ignored or not gated:
            if key in ignored:
                notes.append(f"trace {key}: ignored")
            elif key in cur:
                notes.append(
                    f"trace {key}: {base[key]:g} -> {cur[key]:g} (not gated)"
                )
            continue
        if key not in cur:
            regressions.append(
                f"trace {key} missing from current artifact"
            )
            continue
        if cur[key] > base[key] + atol:
            regressions.append(
                f"trace {key}: {base[key]:.4f} -> {cur[key]:.4f} "
                f"(+{cur[key] - base[key]:.4f}, tolerance {atol:g} absolute)"
            )
        else:
            notes.append(
                f"trace {key}: {base[key]:.4f} -> {cur[key]:.4f} (ok)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"trace {key} new in current: {cur[key]:g}")


def _compare_faults(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    rtol: float,
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the fault-injection section.

    The fault plan behind this section is seeded and counted in
    claims/iterations, so its event counts (deaths, stalls, requeued
    iterations, recovered indices) are as deterministic as ``ops.*``
    and gate exactly.  ``faults.virtual.*`` entries are virtual-time
    recovery makespans and gate upward with the timing ``rtol`` — a
    faulted run that got *slower* to recover is a regression, a faster
    one is an improvement.
    """
    if base is None:
        if cur:
            notes.append(
                "faults section new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "faults section present in baseline but missing from current "
            "artifact (fault-injection run skipped?)"
        )
        return
    for key in sorted(base):
        if key in ignored:
            notes.append(f"fault {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"fault {key} missing from current artifact")
            continue
        if key.startswith(FAULT_TIMING_PREFIX):
            limit = base[key] * (1.0 + rtol)
            if cur[key] > limit:
                pct = (
                    (cur[key] - base[key]) / base[key] * 100.0
                    if base[key]
                    else float("inf")
                )
                regressions.append(
                    f"fault {key}: {base[key]:g} -> {cur[key]:g} "
                    f"(+{pct:.1f}%, tolerance {rtol:.0%})"
                )
            else:
                notes.append(
                    f"fault {key}: {base[key]:g} -> {cur[key]:g} (ok)"
                )
        elif base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"fault {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "injected-fault event counts must match exactly)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"fault {key} new in current: {cur[key]:g}")


def _compare_serve(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    rtol: float,
    atol: float,
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the query-serving bench section.

    The traffic trace is seeded and replayed through a deterministic
    virtual-time model, so its event counts (shard loads, coalesced
    requests, batches, degraded/shed totals) gate exactly, like
    ``ops.*``.  Quality ratios in :data:`SERVE_DOWNWARD_SUFFIXES` gate
    *downward* with ``atol`` — a falling cache hit rate or a shrinking
    optimised-vs-naive speedup is the regression, a rise is an
    improvement.  ``*_ms`` virtual latencies gate upward with ``rtol``,
    as do the :data:`SERVE_BYTES_SUFFIXES` byte totals (store size,
    bytes moved per replay); :data:`SERVE_ERROR_SUFFIX` bounds gate
    exactly (the certified error is part of the answer contract).
    """
    if base is None:
        if cur:
            notes.append(
                "serve section new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "serve section present in baseline but missing from current "
            "artifact (serve bench skipped?)"
        )
        return
    for key in sorted(base):
        if key in ignored:
            notes.append(f"serve {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"serve {key} missing from current artifact")
            continue
        if key.endswith(SERVE_ERROR_SUFFIX):
            if base[key] != cur[key]:
                regressions.append(
                    f"serve {key}: {base[key]:g} -> {cur[key]:g} (error "
                    "bounds are part of the answer contract and gate "
                    "exactly; a silently raised bound is a correctness "
                    "regression)"
                )
            else:
                notes.append(f"serve {key}: {cur[key]:g} (exact, ok)")
        elif key.endswith(SERVE_BYTES_SUFFIXES):
            limit = base[key] * (1.0 + rtol)
            if cur[key] > limit:
                pct = (
                    (cur[key] - base[key]) / base[key] * 100.0
                    if base[key]
                    else float("inf")
                )
                regressions.append(
                    f"serve {key}: {base[key]:g} -> {cur[key]:g} "
                    f"(+{pct:.1f}%, tolerance {rtol:.0%}; byte totals "
                    "gate upward)"
                )
            else:
                notes.append(
                    f"serve {key}: {base[key]:g} -> {cur[key]:g} (ok)"
                )
        elif key.endswith(SERVE_DOWNWARD_SUFFIXES):
            if cur[key] < base[key] - atol:
                regressions.append(
                    f"serve {key}: {base[key]:.4f} -> {cur[key]:.4f} "
                    f"(-{base[key] - cur[key]:.4f}, tolerance {atol:g} "
                    "absolute, downward)"
                )
            else:
                notes.append(
                    f"serve {key}: {base[key]:.4f} -> {cur[key]:.4f} (ok)"
                )
        elif key.endswith(SERVE_LATENCY_SUFFIX):
            limit = base[key] * (1.0 + rtol)
            if cur[key] > limit:
                pct = (
                    (cur[key] - base[key]) / base[key] * 100.0
                    if base[key]
                    else float("inf")
                )
                regressions.append(
                    f"serve {key}: {base[key]:g} -> {cur[key]:g} "
                    f"(+{pct:.1f}%, tolerance {rtol:.0%})"
                )
            else:
                notes.append(
                    f"serve {key}: {base[key]:g} -> {cur[key]:g} (ok)"
                )
        elif base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"serve {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "replay event counts must match exactly)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"serve {key} new in current: {cur[key]:g}")


def _compare_serve_hist(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the virtual-replay latency histogram — everything exact.

    The histogram is recorded from a seeded trace through the
    deterministic virtual-time replay, so every bucket count (and the
    derived quantile keys, which are pure functions of the buckets) is
    machine-independent.  A changed bucket is a changed latency
    distribution; the histogram section has no "tolerance" notion at
    all — that is the point of gating the *distribution* instead of a
    few percentile scalars.
    """
    if base is None:
        if cur:
            notes.append(
                "serve_latency_hist new in current "
                "(no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "serve_latency_hist present in baseline but missing from "
            "current artifact (telemetry disabled in the bench?)"
        )
        return
    for key in sorted(set(base) | set(cur)):
        if key in ignored:
            notes.append(f"hist {key}: ignored")
            continue
        if key not in cur:
            regressions.append(
                f"hist {key} missing from current artifact (bucket "
                "emptied; the latency distribution changed)"
            )
            continue
        if key not in base:
            regressions.append(
                f"hist {key} new in current: {cur[key]:g} (new bucket "
                "filled; the latency distribution changed)"
            )
            continue
        if base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"hist {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "virtual-replay bucket counts gate exactly)"
            )


def _compare_serve_slo(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the SLO report: burn rates upward-only, the rest exact.

    ``*burn_rate`` keys come from the deterministic virtual replay, so
    there is no noise to tolerate — any upward movement means the same
    traffic now misses more of its latency objective.  Downward
    movement is an improvement (noted, so an overly stale baseline is
    visible).  The remaining keys pin the objective itself (threshold,
    window, target fraction) and the violation counts, all exact.
    """
    if base is None:
        if cur:
            notes.append(
                "serve_slo new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "serve_slo present in baseline but missing from current "
            "artifact (SLO evaluation skipped in the bench?)"
        )
        return
    for key in sorted(base):
        if key in ignored:
            notes.append(f"slo {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"slo {key} missing from current artifact")
            continue
        if key.endswith(SLO_BURN_SUFFIX):
            if cur[key] > base[key]:
                regressions.append(
                    f"slo {key}: {base[key]:g} -> {cur[key]:g} (burn "
                    "rates gate upward-only: the same traffic now burns "
                    "its error budget faster)"
                )
            elif cur[key] < base[key]:
                notes.append(
                    f"slo {key}: {base[key]:g} -> {cur[key]:g} "
                    "(improved; consider regenerating the baseline)"
                )
            else:
                notes.append(f"slo {key}: {cur[key]:g} (ok)")
        elif base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"slo {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "SLO parameters and violation counts gate exactly)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"slo {key} new in current: {cur[key]:g}")


def _compare_update(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the incremental-update section — everything exact.

    The update bench is a pure function of the pinned graph, update
    batch and codec: dirty-shard counts, re-solved row totals and the
    store fingerprints are as deterministic as op counters, so every
    key gates exactly.  A fingerprint mismatch means the stored
    *bytes* changed — either an intentional codec/solver change
    (regenerate the baseline) or broken byte-identity.  The
    :data:`UPDATE_COST_KEY` failure message additionally names the
    direction, because a rising cost ratio is the specific regression
    this section exists to catch: updates doing rebuild-shaped work.
    """
    if base is None:
        if cur:
            notes.append(
                "update section new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "update section present in baseline but missing from current "
            "artifact (update bench skipped?)"
        )
        return
    for key in sorted(base):
        if key in ignored:
            notes.append(f"update {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"update {key} missing from current artifact")
            continue
        if base[key] != cur[key]:
            if key == UPDATE_COST_KEY and cur[key] > base[key]:
                regressions.append(
                    f"update {key}: {base[key]:g} -> {cur[key]:g} (the "
                    "update now does more rebuild-shaped work per batch "
                    "— less incremental is the regression)"
                )
            else:
                direction = "up" if cur[key] > base[key] else "down"
                regressions.append(
                    f"update {key}: {base[key]:g} -> {cur[key]:g} "
                    f"({direction}; the update bench is deterministic and "
                    "gates exactly)"
                )
        elif key.endswith("fingerprint"):
            notes.append(f"update {key}: {cur[key]:g} (byte-exact, ok)")
    for key in sorted(set(cur) - set(base)):
        notes.append(f"update {key} new in current: {cur[key]:g}")


def _compare_dist(
    base: Optional[Mapping[str, float]],
    cur: Optional[Mapping[str, float]],
    rtol: float,
    ignored: set,
    regressions: List[str],
    notes: List[str],
) -> None:
    """Gate the multi-node bench section.

    The dist bench replays a seeded skewed trace through the
    consistent-hash router on a virtual cluster, so its event counts
    (failovers, node losses, saturated rejections, rebalance moves,
    recovered shards) and the routed *answer fingerprint* gate exactly
    — a changed fingerprint means routed answers diverged from the
    single-store ground truth, which is a correctness bug, not a perf
    tradeoff.  The :data:`DIST_UPWARD_SUFFIXES` magnitudes (routed
    percentile latencies, simulated ``network_bytes``, cluster-build
    makespans) gate upward with ``rtol`` like ``virtual.*`` timings.
    """
    if base is None:
        if cur:
            notes.append(
                "dist section new in current (no baseline to gate against)"
            )
        return
    if cur is None:
        regressions.append(
            "dist section present in baseline but missing from current "
            "artifact (dist bench skipped?)"
        )
        return
    for key in sorted(base):
        if key in ignored:
            notes.append(f"dist {key}: ignored")
            continue
        if key not in cur:
            regressions.append(f"dist {key} missing from current artifact")
            continue
        if key.endswith("fingerprint"):
            if base[key] != cur[key]:
                regressions.append(
                    f"dist {key}: {base[key]:g} -> {cur[key]:g} (the "
                    "routed answer fingerprint gates exactly; routed "
                    "serving must stay bitwise-identical to the "
                    "single-node store)"
                )
            else:
                notes.append(f"dist {key}: {cur[key]:g} (byte-exact, ok)")
        elif key.endswith(DIST_UPWARD_SUFFIXES):
            limit = base[key] * (1.0 + rtol)
            if cur[key] > limit:
                pct = (
                    (cur[key] - base[key]) / base[key] * 100.0
                    if base[key]
                    else float("inf")
                )
                regressions.append(
                    f"dist {key}: {base[key]:g} -> {cur[key]:g} "
                    f"(+{pct:.1f}%, tolerance {rtol:.0%}; network volume "
                    "and routed latencies gate upward)"
                )
            else:
                notes.append(
                    f"dist {key}: {base[key]:g} -> {cur[key]:g} (ok)"
                )
        elif base[key] != cur[key]:
            direction = "up" if cur[key] > base[key] else "down"
            regressions.append(
                f"dist {key}: {base[key]:g} -> {cur[key]:g} ({direction}; "
                "failover/loss/rebalance event counts gate exactly)"
            )
    for key in sorted(set(cur) - set(base)):
        notes.append(f"dist {key} new in current: {cur[key]:g}")


def _report(regressions: List[str], notes: List[str], verbose: bool) -> None:
    if verbose and notes:
        for note in notes:
            print(f"  note: {note}")
    if regressions:
        print(f"REGRESSION ({len(regressions)} finding(s)):")
        for item in regressions:
            print(f"  !! {item}")
    else:
        print("no regression: counters exact, timings within tolerance")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.regress",
        description="diff two BENCH_*.json artifacts; non-zero on "
        "regression (op counts exact, timings with tolerance)",
    )
    parser.add_argument("baseline", help="baseline artifact (committed)")
    parser.add_argument("current", help="freshly produced artifact")
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.10,
        help="relative slowdown tolerance for timings (default 0.10)",
    )
    parser.add_argument(
        "--include-wall",
        action="store_true",
        help="also gate host wall-clock (wall.*) timings",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="KEY",
        help="exclude a counter/timing/param key from gating (repeatable)",
    )
    parser.add_argument(
        "--trace-atol",
        type=float,
        default=0.02,
        help="absolute tolerance for trace_summary contention/idle/"
        "overhead fractions (default 0.02)",
    )
    parser.add_argument(
        "--serve-atol",
        type=float,
        default=0.02,
        help="absolute downward tolerance for serve hit-rate/speedup "
        "keys (default 0.02)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-key notes"
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_artifact(args.baseline)
        current = load_artifact(args.current)
        regressions, notes = compare_artifacts(
            baseline,
            current,
            rtol=args.rtol,
            include_wall=args.include_wall,
            ignore=args.ignore,
            trace_atol=args.trace_atol,
            serve_atol=args.serve_atol,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {args.baseline} ({baseline['name']})")
    print(f"current : {args.current} ({current['name']})")
    _report(regressions, notes, verbose=not args.quiet)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
