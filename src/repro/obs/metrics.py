"""Hierarchical timers, counters and gauges with a no-op fast path.

Design constraints (ISSUE 1):

* **Near-zero overhead when disabled.**  No registry is installed by
  default; every instrumentation helper starts with a module-global load
  and an ``is None`` test, and :func:`span` returns a shared singleton
  context manager.  Tier-1 timing is unaffected.
* **Thread-safe when enabled.**  The threads backend runs SSSP sweeps
  concurrently; counter/gauge updates take the registry lock, and span
  nesting is tracked per thread (a ``threading.local`` stack) so each
  worker gets its own hierarchy.
* **Mergeable.**  Per-thread (or per-process) registries can be folded
  together with :meth:`MetricsRegistry.merge`, mirroring how the paper's
  per-thread op counters are reduced into one report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Counter",
    "Span",
    "SpanRecord",
    "MetricsRegistry",
    "get_registry",
    "use_registry",
    "enabled",
    "span",
    "counter_add",
    "gauge_set",
    "gauge_max",
]


class Counter:
    """A named additive metric (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def add(self, delta: float = 1) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: its dotted path, start time and duration."""

    path: str
    start: float
    duration: float

    @property
    def name(self) -> str:
        return self.path.rsplit(".", 1)[-1]


class Span:
    """Context manager that times a named section.

    Nested spans compose their names into dotted paths
    (``apsp.dijkstra`` inside ``apsp``), one stack per OS thread.
    """

    __slots__ = ("_registry", "_name", "_path", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        parent = stack[-1] if stack else ""
        self._path = f"{parent}.{self._name}" if parent else self._name
        stack.append(self._path)
        self._start = self._registry._clock()
        return self

    def __exit__(self, *exc) -> None:
        duration = self._registry._clock() - self._start
        stack = self._registry._span_stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        self._registry._record_span(
            SpanRecord(self._path, self._start, duration)
        )


class MetricsRegistry:
    """Collects counters, gauges and spans for one measured run.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, float] = {}
        self._spans: List[SpanRecord] = []
        self._local = threading.local()

    # -- spans -----------------------------------------------------------
    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def span(self, name: str) -> Span:
        return Span(self, name)

    @property
    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def span_durations(self) -> Dict[str, float]:
        """Total duration per dotted span path."""
        out: Dict[str, float] = {}
        for rec in self.spans:
            out[rec.path] = out.get(rec.path, 0.0) + rec.duration
        return out

    # -- counters --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def add(self, name: str, delta: float = 1) -> None:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            c.value += delta

    def add_many(self, values: Mapping[str, float], prefix: str = "") -> None:
        """Fold a ``{name: delta}`` mapping into the counters."""
        pre = f"{prefix}." if prefix else ""
        with self._lock:
            for name, delta in values.items():
                key = pre + name
                c = self._counters.get(key)
                if c is None:
                    c = self._counters[key] = Counter(key)
                c.value += delta

    def counters(self) -> Dict[str, float]:
        """Counter values, sorted by name.

        Sorted (not insertion-ordered) so dumps and BENCH artifacts are
        byte-stable regardless of which worker touched a counter first —
        the threads backend makes first-touch order a race.
        """
        with self._lock:
            return {
                name: self._counters[name].value
                for name in sorted(self._counters)
            }

    # -- gauges ----------------------------------------------------------
    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the maximum observed value (queue occupancy peaks)."""
        value = float(value)
        with self._lock:
            old = self._gauges.get(name)
            if old is None or value > old:
                self._gauges[name] = value

    def gauges(self) -> Dict[str, float]:
        """Gauge values, sorted by name (see :meth:`counters`)."""
        with self._lock:
            return {name: self._gauges[name] for name in sorted(self._gauges)}

    # -- aggregation -----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (counters add, max gauges
        take the max, other gauges keep the latest, spans concatenate).

        This is how per-simulated-thread registries reduce into the one
        artifact the harness writes.
        """
        self.add_many(other.counters())
        for name, value in other.gauges().items():
            self.gauge_max(name, value)
        for rec in other.spans:
            self._record_span(rec)
        return self

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view used by the artifact emitter."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "spans": [
                {
                    "path": rec.path,
                    "start": rec.start,
                    "duration": rec.duration,
                }
                for rec in self.spans
            ],
        }


# ---------------------------------------------------------------------------
# Module-level fast path.  `_current` is the installed registry (None by
# default).  Helpers below are safe to call unconditionally from hot loops.
# ---------------------------------------------------------------------------

_current: Optional[MetricsRegistry] = None
_install_lock = threading.Lock()


class _NullSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


def get_registry() -> Optional[MetricsRegistry]:
    """The currently installed registry, or ``None`` when disabled."""
    return _current


def enabled() -> bool:
    return _current is not None


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the collection target for the duration.

    Re-entrant in the stacking sense: the previous registry (usually
    ``None``) is restored on exit.
    """
    global _current
    with _install_lock:
        previous = _current
        _current = registry
    try:
        yield registry
    finally:
        with _install_lock:
            _current = previous


def span(name: str):
    """Time a section under the installed registry (no-op if none)."""
    reg = _current
    if reg is None:
        return _NULL_SPAN
    return reg.span(name)


def counter_add(name: str, delta: float = 1) -> None:
    reg = _current
    if reg is not None:
        reg.add(name, delta)


def gauge_set(name: str, value: float) -> None:
    reg = _current
    if reg is not None:
        reg.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    reg = _current
    if reg is not None:
        reg.gauge_max(name, value)
