"""Schema-versioned ``BENCH_*.json`` performance artifacts.

One artifact captures one measured run: an environment fingerprint, the
workload parameters, the operation counters (the currency of the cost
model — exact, machine-independent), the timings (virtual time is
deterministic, wall time is informational) and any gauges/spans the
:class:`~repro.obs.metrics.MetricsRegistry` collected.

Section semantics (what :mod:`repro.obs.regress` compares):

=========== ================================================= ==========
section     contents                                           compared
=========== ================================================= ==========
``env``     host fingerprint (python, numpy, platform, cpus)   never
``params``  workload identity (graph, algorithm, threads...)   exact
``counters``op counts (``ops.*``, ``kernel.*``, ...)           exact
``timings`` ``virtual.*`` (deterministic) / ``wall.*``         tolerance
``gauges``  occupancy peaks, contention, utilization           reported
``spans``   hierarchical timer records                         never
``trace_summary`` flat critical-path / contention attribution  tolerance
=========== ================================================= ==========

``trace_summary`` (schema ``/2``, optional) is the flat numeric dict
produced by :meth:`repro.trace.TraceReport.summary` — makespan
attribution fractions, critical-path composition and lock-hotspot
totals.  :mod:`repro.obs.regress` gates its contention/idle fractions
with an absolute tolerance (``--trace-atol``).

``faults`` (schema ``/3``, optional) is a flat numeric dict describing
a deterministic fault-injection run (:mod:`repro.faults`): injected
event counts (exact-gated) plus ``faults.virtual.*`` recovery timings
(gated upward with the timing ``--rtol``).

``serve`` (schema ``/4``, optional) is a flat numeric dict from the
query-serving traffic bench (:mod:`repro.serve.bench`): shard-load /
batching event counts (exact-gated), cache hit rates (gated *downward*
with ``--serve-atol`` — a hit-rate drop is the regression) and virtual
latency percentiles (gated upward with the timing ``--rtol``).

``serve_latency_hist`` (schema ``/6``, optional) is the flat dump of
the virtual replay's :class:`~repro.obs.hist.LatencyHistogram` —
per-bucket counts plus certified-error quantiles.  The virtual replay
is deterministic, so **every** key gates exactly: a single bucket
moving means the replay's latency distribution changed.

``serve_slo`` (schema ``/6``, optional) is the flat
:class:`~repro.serve.slo.SLOReport`: objective parameters and
violation counts gate exactly; keys ending in ``burn_rate`` gate
*upward-only* — burning the error budget faster is the regression,
burning it slower is an improvement.

``update`` (schema ``/7``, optional) is a flat numeric dict from the
incremental-update bench (:func:`repro.serve.bench.run_update_smoke`):
dirty/candidate shard counts, re-solved row totals, store fingerprints
and the update-vs-rebuild cost ratio.  Every field is deterministic
and gates exactly; ``update.cost_ratio`` additionally gates
upward-only (a less incremental update is the regression even when the
baseline is regenerated with ``--ignore``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "env_fingerprint",
    "build_artifact",
    "artifact_from_apsp_result",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
]

#: bump the suffix when the artifact layout changes incompatibly
#: (/2: optional numeric ``trace_summary`` section, sorted counters;
#:  /3: optional numeric ``faults`` section from fault-injection runs;
#:  /4: optional numeric ``serve`` section from the query-serving bench;
#:  /5: serve section gains codec fields — store/loaded bytes, certified
#:      vs observed error, ALT short-circuit counters, raw-ref replay;
#:  /6: optional ``serve_latency_hist`` (exact virtual latency
#:      distribution with certified-error quantiles) and ``serve_slo``
#:      (error-budget burn rates) sections from the serving telemetry;
#:  /7: optional ``update`` section from the incremental-update bench —
#:      dirty-shard accounting, store fingerprints, cost-vs-rebuild;
#:  /8: optional ``dist`` section from the multi-node bench — cluster
#:      build makespan/network volume, routed-serving percentiles for
#:      skewed vs rebalanced placement, failover/loss event counts and
#:      the exact routed answer fingerprint)
SCHEMA_VERSION = "repro.obs.bench/8"

#: required top-level keys and their expected container types
_REQUIRED: Dict[str, type] = {
    "schema": str,
    "name": str,
    "env": dict,
    "params": dict,
    "counters": dict,
    "timings": dict,
    "gauges": dict,
    "spans": list,
}


def env_fingerprint() -> Dict[str, Any]:
    """Where the numbers came from — enough to explain wall-time drift."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }


def build_artifact(
    name: str,
    *,
    params: Optional[Mapping[str, Any]] = None,
    counters: Optional[Mapping[str, float]] = None,
    timings: Optional[Mapping[str, float]] = None,
    gauges: Optional[Mapping[str, float]] = None,
    spans: Optional[List[Dict[str, Any]]] = None,
    registry: Any = None,
    env: Optional[Mapping[str, Any]] = None,
    trace_summary: Optional[Mapping[str, float]] = None,
    faults: Optional[Mapping[str, float]] = None,
    serve: Optional[Mapping[str, float]] = None,
    serve_latency_hist: Optional[Mapping[str, float]] = None,
    serve_slo: Optional[Mapping[str, float]] = None,
    update: Optional[Mapping[str, float]] = None,
    dist: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-valid artifact dict.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) seeds
    the counters/gauges/spans sections; explicit mappings are overlaid on
    top so callers can add derived values.  ``trace_summary`` (a flat
    numeric dict, see :meth:`repro.trace.TraceReport.summary`) and
    ``faults`` (fault-injection event counts + recovery timings) are
    attached verbatim when given.
    """
    base_counters: Dict[str, float] = {}
    base_gauges: Dict[str, float] = {}
    base_spans: List[Dict[str, Any]] = []
    if registry is not None:
        snap = registry.snapshot()
        base_counters.update(snap["counters"])
        base_gauges.update(snap["gauges"])
        base_spans.extend(snap["spans"])
    if counters:
        base_counters.update(counters)
    if gauges:
        base_gauges.update(gauges)
    if spans:
        base_spans.extend(spans)
    artifact: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "env": dict(env) if env is not None else env_fingerprint(),
        "params": dict(params or {}),
        "counters": _sorted_numeric(base_counters, "counters"),
        "timings": _sorted_numeric(dict(timings or {}), "timings"),
        "gauges": _sorted_numeric(base_gauges, "gauges"),
        "spans": base_spans,
    }
    if trace_summary is not None:
        artifact["trace_summary"] = _sorted_numeric(
            dict(trace_summary), "trace_summary"
        )
    if faults is not None:
        artifact["faults"] = _sorted_numeric(dict(faults), "faults")
    if serve is not None:
        artifact["serve"] = _sorted_numeric(dict(serve), "serve")
    if serve_latency_hist is not None:
        artifact["serve_latency_hist"] = _sorted_numeric(
            dict(serve_latency_hist), "serve_latency_hist"
        )
    if serve_slo is not None:
        artifact["serve_slo"] = _sorted_numeric(
            dict(serve_slo), "serve_slo"
        )
    if update is not None:
        artifact["update"] = _sorted_numeric(dict(update), "update")
    if dist is not None:
        artifact["dist"] = _sorted_numeric(dict(dist), "dist")
    return artifact


def artifact_from_apsp_result(
    name: str,
    graph: Any,
    result: Any,
    *,
    registry: Any = None,
    wall_seconds: Optional[float] = None,
    extra_params: Optional[Mapping[str, Any]] = None,
    trace_summary: Optional[Mapping[str, float]] = None,
    faults: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """Artifact for one :func:`repro.core.runner.solve_apsp` run.

    ``graph``/``result`` are duck-typed (CSRGraph / APSPResult) so this
    module stays import-free of the algorithm layers.  Virtual-time
    phase breakdowns go under ``virtual.*`` for the SIM backend
    (deterministic, gated by regress) and under ``wall.*`` otherwise.
    """
    prefix = "virtual" if result.backend == "sim" else "wall"
    timings: Dict[str, float] = {
        f"{prefix}.ordering": float(result.phase_times.ordering),
        f"{prefix}.dijkstra": float(result.phase_times.dijkstra),
        f"{prefix}.total": float(result.total_time),
    }
    if wall_seconds is not None:
        timings["wall.elapsed"] = float(wall_seconds)
    params: Dict[str, Any] = {
        "graph": graph.name or "anonymous",
        "n": int(graph.num_vertices),
        "m": int(graph.num_edges),
        "directed": bool(graph.directed),
        "algorithm": result.algorithm,
        "backend": result.backend,
        "schedule": result.schedule,
        "threads": int(result.num_threads),
        "ordering": result.ordering_method,
    }
    if extra_params:
        params.update(extra_params)
    counters = {
        f"ops.{key}": int(value)
        for key, value in result.ops.as_dict().items()
    }
    counters["result.reachable_pairs"] = int(result.reachable_pairs())
    return build_artifact(
        name,
        params=params,
        counters=counters,
        timings=timings,
        registry=registry,
        trace_summary=trace_summary,
        faults=faults,
    )


def _sorted_numeric(mapping: Dict[str, Any], section: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key in sorted(mapping, key=str):
        value = mapping[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"{section}[{key!r}] must be numeric, got {value!r}"
            )
        out[str(key)] = value
    return out


def write_artifact(path: str, artifact: Mapping[str, Any]) -> str:
    """Validate and write one artifact; returns the path written."""
    problems = validate_artifact(artifact)
    if problems:
        raise ValueError(
            "refusing to write invalid artifact: " + "; ".join(problems)
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    """Read and validate one artifact file."""
    with open(path, "r", encoding="utf-8") as fh:
        artifact = json.load(fh)
    problems = validate_artifact(artifact)
    if problems:
        raise ValueError(f"{path} is not a valid artifact: "
                         + "; ".join(problems))
    return artifact


def validate_artifact(artifact: Any) -> List[str]:
    """Schema check; returns a list of problems (empty means valid)."""
    problems: List[str] = []
    if not isinstance(artifact, Mapping):
        return ["artifact must be a JSON object"]
    schema = artifact.get("schema")
    if not isinstance(schema, str) or not schema.startswith(
        "repro.obs.bench/"
    ):
        problems.append(f"unknown schema {schema!r}")
    for key, kind in _REQUIRED.items():
        value = artifact.get(key)
        if value is None:
            problems.append(f"missing section {key!r}")
        elif not isinstance(value, kind):
            problems.append(
                f"section {key!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )
    for optional in ("trace_summary", "faults", "serve",
                     "serve_latency_hist", "serve_slo", "update", "dist"):
        section = artifact.get(optional)
        if section is not None and not isinstance(section, Mapping):
            problems.append(
                f"section {optional!r} must be dict, "
                f"got {type(section).__name__}"
            )
    for section in ("counters", "timings", "gauges", "trace_summary",
                    "faults", "serve", "serve_latency_hist", "serve_slo",
                    "update", "dist"):
        values = artifact.get(section)
        if isinstance(values, Mapping):
            for name, value in values.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    problems.append(
                        f"{section}[{name!r}] must be numeric, got {value!r}"
                    )
    spans = artifact.get("spans")
    if isinstance(spans, list):
        for i, rec in enumerate(spans):
            if not isinstance(rec, Mapping) or "path" not in rec \
                    or "duration" not in rec:
                problems.append(f"spans[{i}] needs 'path' and 'duration'")
                break
    return problems
