"""Batched-vs-unbatched smoke workload → ``BENCH_smoke_batched.json``.

CI's ``bench-smoke`` job runs this module next to :mod:`repro.obs.smoke`
and gates the artifact with :mod:`repro.obs.regress` against the
committed baseline (``benchmarks/baselines/BENCH_smoke_batched.json``).

Two configurations run on the *real* serial backend:

* **flagged** — ParAPSP with flag reuse, unbatched vs batched (strict
  lockstep mode).  Strict mode reproduces the sequential sweep
  bit-for-bit, so the per-source ``OpCounts`` — and therefore the
  virtual cost — are *identical by construction*; this config is the
  CI tripwire for the bitwise contract.  The module exits non-zero if
  the batched virtual cost exceeds the unbatched one (ISSUE 2's gate),
  which under the contract can only happen if the engine broke.
* **flagless** — the headline speedup workload: independent SPFA
  sweeps (``use_flags=False``) where every source is always active and
  the blocked kernels run at full occupancy.  With flag reuse on, hub
  sources form an inherent sequential dependency chain (see
  ``docs/perf.md``), capping the batched win; without it the batching
  advantage is pure and the wall-clock speedup is reported as
  ``wall.speedup_x``.

Everything *gated* is machine-independent (operation counts and the
virtual costs derived from them); wall-clock numbers are recorded for
the speedup headline but never gated.

Regenerate the baseline after an *intentional* perf-relevant change::

    PYTHONPATH=src python -m repro.obs.smoke_batched \
        --out benchmarks/baselines/BENCH_smoke_batched.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.runner import solve_apsp
from ..graphs.rmat import rmat
from .artifact import build_artifact, write_artifact

__all__ = ["run_smoke_batched", "main"]

#: bump when the workload knobs change so a stale baseline fails on
#: params instead of on mysterious counters
WORKLOAD_REV = 1

#: flagged config — small enough that the strict engine's parity runs
#: in well under a second, big enough that merges actually happen
FLAGGED_SCALE = 7
FLAGGED_EDGE_FACTOR = 8
FLAGGED_BLOCK = 64

#: flagless headline config — the fixed R-MAT workload of ISSUE 2;
#: B = n puts the whole source set in one block (maximum occupancy)
FLAGLESS_SCALE = 9
FLAGLESS_EDGE_FACTOR = 8
FLAGLESS_BLOCK = 512

DEFAULT_SEED = 5
KERNEL = "blocked"


def _config(
    graph,
    *,
    algorithm: str,
    use_flags: bool,
    block_size: Optional[int],
) -> Dict[str, Any]:
    """One solve; returns its ops total, dist and dijkstra wall time."""
    result = solve_apsp(
        graph,
        algorithm=algorithm,
        backend="serial",
        queue="fifo",
        use_flags=use_flags,
        block_size=block_size,
        kernel=KERNEL,
    )
    return {
        "dist": result.dist,
        "ops": result.ops,
        "work": int(result.ops.total_work()),
        "wall": float(result.phase_times.dijkstra),
    }


def run_smoke_batched(*, seed: int = DEFAULT_SEED) -> Dict[str, Any]:
    """Run both configs; returns the artifact dict.

    The artifact's ``counters`` are namespaced per config
    (``flagged.*`` / ``flagless.*``) because the two workloads must not
    sum — each is gated exactly against its baseline value.
    """
    counters: Dict[str, float] = {}
    timings: Dict[str, float] = {}

    flagged_graph = rmat(
        FLAGGED_SCALE,
        edge_factor=FLAGGED_EDGE_FACTOR,
        seed=seed,
        name=f"rmat-s{FLAGGED_SCALE}-ef{FLAGGED_EDGE_FACTOR}",
    )
    flagless_graph = rmat(
        FLAGLESS_SCALE,
        edge_factor=FLAGLESS_EDGE_FACTOR,
        seed=seed,
        name=f"rmat-s{FLAGLESS_SCALE}-ef{FLAGLESS_EDGE_FACTOR}",
    )

    configs = {
        "flagged": dict(
            graph=flagged_graph,
            algorithm="parapsp",
            use_flags=True,
            block=FLAGGED_BLOCK,
        ),
        "flagless": dict(
            graph=flagless_graph,
            algorithm="paralg1",
            use_flags=False,
            block=FLAGLESS_BLOCK,
        ),
    }
    for label, cfg in configs.items():
        unbatched = _config(
            cfg["graph"],
            algorithm=cfg["algorithm"],
            use_flags=cfg["use_flags"],
            block_size=None,
        )
        batched = _config(
            cfg["graph"],
            algorithm=cfg["algorithm"],
            use_flags=cfg["use_flags"],
            block_size=cfg["block"],
        )
        # the strict engine's contract: bitwise distances, identical ops
        counters[f"{label}.dist_identical"] = int(
            np.array_equal(unbatched["dist"], batched["dist"])
        )
        counters[f"{label}.ops_identical"] = int(
            unbatched["ops"] == batched["ops"]
        )
        # virtual costs are derived from OpCounts — machine-independent,
        # gated by regress with its timing tolerance (they are in fact
        # exactly equal while the bitwise contract holds)
        timings[f"virtual.{label}.unbatched_work"] = unbatched["work"]
        timings[f"virtual.{label}.batched_work"] = batched["work"]
        timings[f"wall.{label}.unbatched"] = unbatched["wall"]
        timings[f"wall.{label}.batched"] = batched["wall"]

    headline = timings["wall.flagless.unbatched"] / max(
        timings["wall.flagless.batched"], 1e-12
    )
    timings["wall.speedup_x"] = headline

    return build_artifact(
        "smoke-batched",
        params={
            "workload_rev": WORKLOAD_REV,
            "rmat_seed": seed,
            "kernel": KERNEL,
            "flagged_scale": FLAGGED_SCALE,
            "flagged_edge_factor": FLAGGED_EDGE_FACTOR,
            "flagged_block": FLAGGED_BLOCK,
            "flagless_scale": FLAGLESS_SCALE,
            "flagless_edge_factor": FLAGLESS_EDGE_FACTOR,
            "flagless_block": FLAGLESS_BLOCK,
            "backend": "serial",
            "queue": "fifo",
        },
        counters=counters,
        timings=timings,
    )


def _gate(artifact: Dict[str, Any]) -> int:
    """In-module gate: batched virtual cost must not exceed unbatched."""
    failures = 0
    counters = artifact["counters"]
    timings = artifact["timings"]
    for label in ("flagged", "flagless"):
        if not counters[f"{label}.dist_identical"]:
            print(f"FAIL: {label}: batched distances differ from unbatched")
            failures += 1
        if not counters[f"{label}.ops_identical"]:
            print(f"FAIL: {label}: batched OpCounts differ from unbatched")
            failures += 1
        unbatched = timings[f"virtual.{label}.unbatched_work"]
        batched = timings[f"virtual.{label}.batched_work"]
        if batched > unbatched:
            print(
                f"FAIL: {label}: batched virtual cost {batched:g} exceeds "
                f"unbatched {unbatched:g}"
            )
            failures += 1
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.smoke_batched",
        description="run the batched-vs-unbatched smoke benchmark and "
        "write its BENCH artifact (non-zero exit if batched costs more)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_smoke_batched.json",
        help="artifact path to write",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    artifact = run_smoke_batched(seed=args.seed)
    path = write_artifact(args.out, artifact)
    timings = artifact["timings"]
    print(f"wrote {path}")
    for label in ("flagged", "flagless"):
        print(
            "  {}: virtual {:g} -> {:g}, wall {:.3f}s -> {:.3f}s".format(
                label,
                timings[f"virtual.{label}.unbatched_work"],
                timings[f"virtual.{label}.batched_work"],
                timings[f"wall.{label}.unbatched"],
                timings[f"wall.{label}.batched"],
            )
        )
    print(f"  headline (flagless) speedup: {timings['wall.speedup_x']:.2f}x")
    return 1 if _gate(artifact) else 0


if __name__ == "__main__":
    sys.exit(main())
