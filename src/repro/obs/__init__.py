"""``repro.obs`` — lightweight observability: timers, counters, artifacts.

The rest of the library is instrumented against this package: hot paths
call :func:`counter_add` / :func:`span` / :func:`gauge_max`, which are
no-ops (one global load + ``is None`` test) until a caller installs a
:class:`MetricsRegistry` with :func:`use_registry`.  That keeps tier-1
timing unaffected while letting the CLI (``repro-apsp solve --metrics``),
the benchmark harness and the CI smoke job collect structured metrics.

Layout
------
* :mod:`repro.obs.metrics`  — ``Span`` / ``Counter`` / ``MetricsRegistry``
  plus the module-level no-op fast path.
* :mod:`repro.obs.artifact` — schema-versioned ``BENCH_*.json`` emitter
  (env fingerprint, graph params, op counts, wall/virtual timings).
* :mod:`repro.obs.regress`  — artifact comparator; exits non-zero on a
  regression (op counts exact, timings with tolerance).  The CI gate.
  Also cross-checks ``kernel.*`` call accounting against the
  ``ops.*`` per-source totals so kernel refactors cannot silently
  desync the cost model.
* :mod:`repro.obs.smoke`    — deterministic smoke workload that produces
  the ``BENCH_smoke.json`` artifact CI compares against its baseline.
* :mod:`repro.obs.smoke_batched` — batched-vs-unbatched sweep smoke
  (``BENCH_smoke_batched.json``); gates batched virtual cost ≤
  unbatched and reports the wall-clock speedup headline.
* :mod:`repro.obs.hist`     — mergeable log-bucketed streaming
  ``LatencyHistogram`` with a certified relative quantile error and
  per-bucket trace-id exemplars; the distribution counterpart of the
  counters, used by the serving telemetry and SLO layers.
"""

from .artifact import (
    SCHEMA_VERSION,
    artifact_from_apsp_result,
    build_artifact,
    env_fingerprint,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from .hist import HIST_SCHEMA_VERSION, LatencyHistogram
from .metrics import (
    Counter,
    MetricsRegistry,
    Span,
    counter_add,
    enabled,
    gauge_max,
    gauge_set,
    get_registry,
    span,
    use_registry,
)

__all__ = [
    "SCHEMA_VERSION",
    "artifact_from_apsp_result",
    "build_artifact",
    "env_fingerprint",
    "load_artifact",
    "validate_artifact",
    "write_artifact",
    "HIST_SCHEMA_VERSION",
    "LatencyHistogram",
    "Counter",
    "MetricsRegistry",
    "Span",
    "counter_add",
    "enabled",
    "gauge_max",
    "gauge_set",
    "get_registry",
    "span",
    "use_registry",
]
