"""Deterministic smoke workload → ``BENCH_smoke.json``.

CI's ``bench-smoke`` job runs this module, then gates with
:mod:`repro.obs.regress` against the committed baseline
(``benchmarks/baselines/BENCH_smoke.json``).  Everything gated is
machine-independent: the R-MAT generator is seeded, ParAPSP on the SIM
backend is bit-reproducible, so operation counts and virtual timings
are identical on every host.  Wall-clock is recorded but not gated.

Regenerate the baseline after an *intentional* perf-relevant change::

    PYTHONPATH=src python -m repro.obs.smoke \
        --out benchmarks/baselines/BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.runner import solve_apsp
from ..faults import KILL, FaultPlan
from ..graphs.rmat import rmat
from .artifact import artifact_from_apsp_result, write_artifact
from .metrics import MetricsRegistry, use_registry

__all__ = ["run_smoke", "main"]

#: workload identity — bump ``WORKLOAD_REV`` when the knobs change so a
#: stale baseline fails on params instead of on mysterious counters
WORKLOAD_REV = 1
DEFAULT_SCALE = 7
DEFAULT_EDGE_FACTOR = 8
DEFAULT_THREADS = 8
DEFAULT_SEED = 5

#: the smoke fault plan: kill simulated worker 1 after its second work
#: claim.  Deterministic (claim-counted), so the deaths / requeued /
#: recovery numbers it produces are exactly reproducible on every host.
SMOKE_FAULT_PLAN = FaultPlan.single(KILL, worker=1, after_claims=2)


def run_smoke(
    *,
    scale: int = DEFAULT_SCALE,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    threads: int = DEFAULT_THREADS,
    seed: int = DEFAULT_SEED,
    algorithm: str = "parapsp",
) -> Tuple[Dict[str, object], MetricsRegistry, object]:
    """Run the smoke workload; returns ``(artifact, registry, trace)``.

    ``trace`` is the unified execution trace
    (:class:`repro.trace.Trace`) of the traced SIM run; its analyzer
    summary is folded into the artifact's ``trace_summary`` section.

    A second run replays the same workload under
    :data:`SMOKE_FAULT_PLAN` (a simulated worker kill) and must come
    back bitwise-identical; its injection counts and virtual recovery
    cost become the artifact's ``faults`` section, so CI gates the
    crash-recovery path alongside the op counts.
    """
    from ..trace import analyze_trace, trace_from_apsp_result

    graph = rmat(
        scale,
        edge_factor=edge_factor,
        seed=seed,
        name=f"rmat-s{scale}-ef{edge_factor}",
    )
    registry = MetricsRegistry()
    t0 = time.perf_counter()
    with use_registry(registry):
        result = solve_apsp(
            graph,
            algorithm=algorithm,
            num_threads=threads,
            backend="sim",
            trace=True,
        )
    wall = time.perf_counter() - t0

    # replay under the fault plan in an isolated registry: recovery must
    # reproduce the exact distance matrix, and what it cost is gated
    fault_registry = MetricsRegistry()
    with use_registry(fault_registry):
        faulted = solve_apsp(
            graph,
            algorithm=algorithm,
            num_threads=threads,
            backend="sim",
            fault_plan=SMOKE_FAULT_PLAN,
        )
    if not np.array_equal(result.dist, faulted.dist):
        raise RuntimeError(
            "fault-injection smoke failed: recovered distance matrix "
            "differs from the fault-free run"
        )
    faults: Dict[str, float] = {
        key: value
        for key, value in fault_registry.snapshot()["counters"].items()
        if key.startswith("faults.")
    }
    faults["faults.virtual.dijkstra"] = float(faulted.phase_times.dijkstra)
    faults["faults.virtual.total"] = float(faulted.total_time)

    # the simulator is deterministic, so the unified-trace attribution
    # (idle / lock-wait / overhead fractions) is as gateable as the op
    # counts; regress checks it against the baseline with --trace-atol
    trace = trace_from_apsp_result(result)
    artifact = artifact_from_apsp_result(
        "smoke",
        graph,
        result,
        registry=registry,
        wall_seconds=wall,
        extra_params={
            "workload_rev": WORKLOAD_REV,
            "rmat_scale": scale,
            "rmat_edge_factor": edge_factor,
            "rmat_seed": seed,
        },
        trace_summary=analyze_trace(trace).summary(),
        faults=faults,
    )
    return artifact, registry, trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.smoke",
        description="run the deterministic smoke benchmark and write its "
        "BENCH artifact",
    )
    parser.add_argument(
        "--out", default="BENCH_smoke.json", help="artifact path to write"
    )
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument(
        "--edge-factor", type=int, default=DEFAULT_EDGE_FACTOR
    )
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--algorithm", default="parapsp", help="solver to smoke-test"
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the run's Chrome-trace JSON (Perfetto) here",
    )
    args = parser.parse_args(argv)
    artifact, _, trace = run_smoke(
        scale=args.scale,
        edge_factor=args.edge_factor,
        threads=args.threads,
        seed=args.seed,
        algorithm=args.algorithm,
    )
    path = write_artifact(args.out, artifact)
    counters = artifact["counters"]
    print(f"wrote {path}")
    print(
        "  merges={:d} relaxations={:d} virtual_total={:g}".format(
            int(counters["ops.row_merges"]),
            int(counters["ops.edge_relaxations"]),
            artifact["timings"]["virtual.total"],
        )
    )
    summary = artifact["trace_summary"]
    print(
        "  trace: compute={:.1%} lock-wait={:.1%} overhead={:.1%} "
        "idle={:.1%}".format(
            summary["trace.compute_fraction"],
            summary["trace.lock_wait_fraction"],
            summary["trace.overhead_fraction"],
            summary["trace.idle_fraction"],
        )
    )
    faults = artifact["faults"]
    print(
        "  faults: deaths={:d} requeued={:d} recovery_virtual={:g}".format(
            int(faults.get("faults.sim.deaths", 0)),
            int(faults.get("faults.sim.requeued_iterations", 0)),
            faults["faults.virtual.dijkstra"],
        )
    )
    if args.trace_out:
        from ..trace import write_chrome

        print(f"wrote {write_chrome(args.trace_out, trace)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
