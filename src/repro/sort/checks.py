"""Validation helpers for sort results (used by tests and benches)."""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["check_sorted", "check_stable_argsort"]


def check_sorted(values: np.ndarray, *, descending: bool = False) -> None:
    """Raise unless ``values`` is monotone in the requested direction."""
    values = np.asarray(values)
    if values.size < 2:
        return
    diffs = np.diff(values)
    bad = diffs > 0 if descending else diffs < 0
    if np.any(bad):
        k = int(np.flatnonzero(bad)[0])
        raise ValidationError(
            f"not sorted at position {k}: {values[k]} then {values[k + 1]}"
        )


def check_stable_argsort(
    perm: np.ndarray, keys: np.ndarray, *, descending: bool = False
) -> None:
    """Raise unless ``perm`` is a stable argsort of ``keys``.

    Stability: among equal keys, positions appear in ascending input
    index.
    """
    perm = np.asarray(perm, dtype=np.int64)
    keys = np.asarray(keys)
    n = keys.size
    if perm.shape != (n,):
        raise ValidationError(f"perm shape {perm.shape} != ({n},)")
    seen = np.zeros(n, dtype=bool)
    if n and ((perm < 0).any() or (perm >= n).any()):
        raise ValidationError("perm contains out-of-range indices")
    seen[perm] = True
    if not seen.all():
        raise ValidationError("perm is not a permutation")
    check_sorted(keys[perm], descending=descending)
    for i in range(n - 1):
        a, b = perm[i], perm[i + 1]
        if keys[a] == keys[b] and a > b:
            raise ValidationError(
                f"unstable tie order at position {i}: index {a} before {b} "
                f"for equal key {keys[a]}"
            )
