"""General-purpose parallel sort for keys in a fixed range.

§4.3 of the paper: *"the proposed parallel MultiLists ordering algorithm
can be used in general parallel sorting problem when keys are in limited
ranges."*  This module delivers that claim as a standalone API,
decoupled from graphs and degrees:

* every thread distributes its block of items into a private array of
  ``K`` buckets (no locks);
* a prefix-sum over the per-thread bucket sizes assigns each
  ``(thread, key)`` bucket a disjoint slice of the output;
* buckets are copied out in parallel.

The result is a *stable* sort: ties keep input order, because thread
blocks are contiguous, ascending, and drained in thread order.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ReproError
from ..parallel import Backend, Schedule, parallel_for
from ..parallel.schedule import block_assignment
from ..simx.machine import MachineSpec
from ..simx.trace import SimResult
from .counting import counting_argsort

__all__ = ["multilists_argsort", "multilists_sort", "simulate_multilists_sort"]


def multilists_argsort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    num_threads: int = 1,
    max_key: Optional[int] = None,
    backend: "Backend | str" = Backend.THREADS,
) -> np.ndarray:
    """Stable argsort of bounded non-negative integer keys, in parallel.

    Semantics are identical to
    :func:`repro.sort.counting.counting_argsort`; only the execution
    strategy differs.  With one thread the two are the same algorithm.
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if keys.min() < 0:
        raise ReproError("keys must be non-negative")
    hi = int(keys.max())
    if max_key is not None:
        if hi > max_key:
            raise ReproError(f"key {hi} exceeds declared max_key {max_key}")
        hi = max_key
    T = max(1, num_threads)
    blocks = block_assignment(n, T)

    # phase 1: private bucket fill per thread (lock-free)
    local_counts = np.zeros((T, hi + 1), dtype=np.int64)
    local_items: List[Optional[List[List[int]]]] = [None] * T

    def fill(t: int, _thread: int) -> None:
        buckets: List[List[int]] = [[] for _ in range(hi + 1)]
        for i in blocks[t]:
            buckets[int(keys[i])].append(int(i))
        local_items[t] = buckets
        for k in range(hi + 1):
            local_counts[t, k] = len(buckets[k])

    parallel_for(T, fill, num_threads=T, schedule=Schedule.BLOCK, backend=backend)

    # phase 2: per-(thread, key) output offsets
    key_order = range(hi, -1, -1) if descending else range(hi + 1)
    pos = np.zeros((T, hi + 1), dtype=np.int64)
    offset = 0
    for k in key_order:
        for t in range(T):
            pos[t, k] = offset
            offset += int(local_counts[t, k])

    # phase 3: parallel copy-out (disjoint slices per thread)
    out = np.empty(n, dtype=np.int64)

    def copy_out(t: int, _thread: int) -> None:
        buckets = local_items[t]
        assert buckets is not None
        for k in range(hi + 1):
            p = int(pos[t, k])
            for item in buckets[k]:
                out[p] = item
                p += 1

    parallel_for(T, copy_out, num_threads=T, schedule=Schedule.BLOCK, backend=backend)
    return out


def multilists_sort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    num_threads: int = 1,
    max_key: Optional[int] = None,
    backend: "Backend | str" = Backend.THREADS,
) -> np.ndarray:
    """Sorted copy of ``keys`` via :func:`multilists_argsort`."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys[
        multilists_argsort(
            keys,
            descending=descending,
            num_threads=num_threads,
            max_key=max_key,
            backend=backend,
        )
    ]


def simulate_multilists_sort(
    keys: np.ndarray,
    machine: MachineSpec,
    *,
    num_threads: int,
    item_cost: float = 6.0,
) -> SimResult:
    """Virtual-time estimate of the general sort (three balanced phases).

    Unlike the degree-ordering variant there is no per-degree region
    loop — the copy-out is one region over threads — so the sort scales
    cleanly until the prefix term (``K × T``) catches up.
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.size
    if n == 0:
        raise ReproError("cannot sort an empty key array")
    T = machine.clamp_threads(num_threads)
    hi = int(keys.max())
    region = machine.region_overhead(T)
    per_thread = float(np.ceil(n / T))
    fill = per_thread * item_cost
    prefix = (hi + 1) * T * 2.0
    copy = per_thread * item_cost / 2.0 + machine.false_sharing_penalty
    makespan = 2 * region + fill + prefix + copy
    busy = np.full(T, fill + copy)
    overhead = np.full(T, 2 * region)
    overhead[0] += prefix  # prefix runs on the master thread
    return SimResult(
        num_threads=T,
        makespan=makespan,
        busy=busy,
        overhead=overhead,
    )
