"""Radix sort built from MultiLists passes — lifting the "limited range"
restriction of the paper's §4.3 general-purpose sort.

The paper's MultiLists sort needs keys in a bounded range (one bucket
per key value).  Standard LSD radix decomposition removes that limit:
sort by successive fixed-width digits, each pass a stable bounded-key
pass — so each pass can be the *parallel* MultiLists sort, and the
whole thing inherits its lock-free parallelism while handling arbitrary
64-bit non-negative keys.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReproError
from ..parallel import Backend
from .counting import counting_argsort
from .multilists_sort import multilists_argsort

__all__ = ["radix_argsort", "radix_sort"]

#: digit width in bits; 2^8 buckets per pass keeps the per-thread
#: bucket arrays small while needing at most 8 passes for 64-bit keys
DIGIT_BITS = 8
DIGIT_MASK = (1 << DIGIT_BITS) - 1


def radix_argsort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.THREADS,
) -> np.ndarray:
    """Stable argsort of arbitrary non-negative int64 keys.

    LSD radix over :data:`DIGIT_BITS`-bit digits; every pass is a
    stable bounded-key argsort (the parallel MultiLists pass when
    ``num_threads > 1``, the sequential counting pass otherwise).
    Matches ``np.argsort(kind="stable")`` output exactly.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ReproError("keys must be one-dimensional")
    if not np.issubdtype(keys.dtype, np.integer):
        raise ReproError(f"radix sort needs integer keys, got {keys.dtype}")
    n = keys.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    keys = keys.astype(np.int64, copy=False)
    if keys.min() < 0:
        raise ReproError("keys must be non-negative")

    hi = int(keys.max())
    passes = max(1, (hi.bit_length() + DIGIT_BITS - 1) // DIGIT_BITS)

    perm = np.arange(n, dtype=np.int64)
    for p in range(passes):
        digits = (keys[perm] >> (p * DIGIT_BITS)) & DIGIT_MASK
        if num_threads > 1:
            inner = multilists_argsort(
                digits,
                num_threads=num_threads,
                max_key=DIGIT_MASK,
                backend=backend,
            )
        else:
            inner = counting_argsort(digits, max_key=DIGIT_MASK)
        perm = perm[inner]
    if descending:
        # reverse while keeping ties stable: reverse runs of equal keys
        perm = _stable_reverse(keys, perm)
    return perm


def _stable_reverse(keys: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Turn a stable ascending permutation into the stable descending
    one (runs of equal keys keep ascending input order)."""
    reversed_perm = perm[::-1]
    sorted_keys = keys[reversed_perm]
    out = np.empty_like(perm)
    start = 0
    n = perm.size
    while start < n:
        end = start + 1
        while end < n and sorted_keys[end] == sorted_keys[start]:
            end += 1
        out[start:end] = reversed_perm[start:end][::-1]
        start = end
    return out


def radix_sort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    num_threads: int = 1,
    backend: "Backend | str" = Backend.THREADS,
) -> np.ndarray:
    """Sorted copy of ``keys`` via :func:`radix_argsort`."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys[
        radix_argsort(
            keys,
            descending=descending,
            num_threads=num_threads,
            backend=backend,
        )
    ]
