"""General-purpose bounded-key sorting (the paper's §4.3 side claim).

:func:`multilists_argsort` / :func:`multilists_sort` are the parallel
fixed-range sort derived from the MultiLists ordering procedure;
:func:`counting_argsort` / :func:`counting_sort` are the sequential
reference they must agree with bit for bit.
"""

from .checks import check_sorted, check_stable_argsort
from .counting import counting_argsort, counting_sort
from .radix import radix_argsort, radix_sort
from .multilists_sort import (
    multilists_argsort,
    multilists_sort,
    simulate_multilists_sort,
)

__all__ = [
    "check_sorted",
    "check_stable_argsort",
    "counting_argsort",
    "counting_sort",
    "multilists_argsort",
    "multilists_sort",
    "radix_argsort",
    "radix_sort",
    "simulate_multilists_sort",
]
