"""Sequential counting sort for bounded integer keys.

The sequential reference that the parallel MultiLists sort must agree
with: O(n + K) time for keys in ``[0, K)``, stable (equal keys keep
their input order), ascending or descending.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ReproError

__all__ = ["counting_argsort", "counting_sort"]


def _check_keys(keys: np.ndarray, max_key: Optional[int]) -> int:
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ReproError("keys must be one-dimensional")
    if not np.issubdtype(keys.dtype, np.integer):
        raise ReproError(
            f"counting sort needs integer keys, got dtype {keys.dtype}"
        )
    if keys.size == 0:
        return 0
    lo = int(keys.min())
    if lo < 0:
        raise ReproError(f"keys must be non-negative, found {lo}")
    hi = int(keys.max())
    if max_key is not None:
        if hi > max_key:
            raise ReproError(f"key {hi} exceeds declared max_key {max_key}")
        hi = max_key
    return hi


def counting_argsort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    max_key: Optional[int] = None,
) -> np.ndarray:
    """Stable permutation that sorts ``keys``.

    ``max_key`` (the "fixed range" bound) lets callers pre-declare the
    key ceiling so repeated sorts of same-range data skip the scan.
    """
    keys = np.asarray(keys)
    n = keys.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    hi = _check_keys(keys, max_key)
    keys = keys.astype(np.int64, copy=False)
    counts = np.bincount(keys, minlength=hi + 1)
    if descending:
        counts = counts[::-1]
        effective = hi - keys
    else:
        effective = keys
    starts = np.zeros(hi + 1, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    out = np.empty(n, dtype=np.int64)
    cursor = starts.copy()
    for i in range(n):
        k = effective[i]
        out[cursor[k]] = i
        cursor[k] += 1
    return out


def counting_sort(
    keys: np.ndarray,
    *,
    descending: bool = False,
    max_key: Optional[int] = None,
) -> np.ndarray:
    """Sorted copy of ``keys`` (stable order is only observable through
    :func:`counting_argsort`, but both share one code path)."""
    return np.asarray(keys, dtype=np.int64)[
        counting_argsort(keys, descending=descending, max_key=max_key)
    ]
