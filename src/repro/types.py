"""Shared type aliases and small value objects used across subpackages.

Centralising these avoids circular imports between :mod:`repro.core`,
:mod:`repro.parallel` and :mod:`repro.simx`, which all need to agree on
how schedules, backends and timing breakdowns are described.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = [
    "INF",
    "Schedule",
    "Backend",
    "OpCounts",
    "PhaseTimes",
]

#: Distance value used for "unreachable" throughout the library.  We use
#: IEEE infinity rather than a sentinel integer so numpy reductions and
#: comparisons behave naturally.
INF: float = float(np.inf)


class Schedule(enum.Enum):
    """OpenMP-style loop scheduling policies (paper §3.2, Figure 1).

    * ``BLOCK``          — the OpenMP default: contiguous equal chunks.
    * ``STATIC_CYCLIC``  — ``schedule(static, 1)``: round-robin by index.
    * ``DYNAMIC``        — ``schedule(dynamic, 1)``: threads grab the next
      unclaimed iteration when they become free; preserves the global
      issue order exactly, which the paper shows matters for ParAlg2.
    """

    BLOCK = "block"
    STATIC_CYCLIC = "static-cyclic"
    DYNAMIC = "dynamic"

    @classmethod
    def coerce(cls, value: "Schedule | str") -> "Schedule":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            from .exceptions import ScheduleError

            valid = ", ".join(m.value for m in cls)
            raise ScheduleError(
                f"unknown schedule {value!r}; expected one of: {valid}"
            ) from None


class Backend(enum.Enum):
    """Execution backends for the parallel runtime.

    * ``SERIAL``  — single-threaded reference executor.
    * ``THREADS`` — real ``threading`` threads (GIL-bound in CPython, but
      exercises the true locking/scheduling code paths).
    * ``PROCESS`` — ``multiprocessing`` workers sharing the distance matrix
      through ``multiprocessing.shared_memory``.
    * ``SIM``     — the discrete-event machine simulator
      (:mod:`repro.simx`); deterministic virtual time, used to regenerate
      the paper's multi-core figures on any host.
    """

    SERIAL = "serial"
    THREADS = "threads"
    PROCESS = "process"
    SIM = "sim"

    @classmethod
    def coerce(cls, value: "Backend | str") -> "Backend":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            from .exceptions import BackendError

            valid = ", ".join(m.value for m in cls)
            raise BackendError(
                f"unknown backend {value!r}; expected one of: {valid}"
            ) from None


@dataclass
class OpCounts:
    """Operation counters for one run (or one SSSP sweep) of an algorithm.

    These are the currency of the cost model: the simulator converts them
    into virtual time, and the analysis layer reports them directly when
    wall-clock numbers would be dominated by interpreter noise.
    """

    #: queue pop operations in the modified Dijkstra
    pops: int = 0
    #: edge relaxations attempted (line 14 of Algorithm 1)
    edge_relaxations: int = 0
    #: successful edge relaxations (distance improved, vertex enqueued)
    edge_improvements: int = 0
    #: full-row merge operations via a flagged vertex (line 8, Algorithm 1)
    row_merges: int = 0
    #: element comparisons inside row merges (n per merge)
    merge_comparisons: int = 0
    #: times a flagged vertex let us prune its expansion entirely
    flag_hits: int = 0

    def total_work(self) -> int:
        """A scalar work measure used as the default virtual-time cost."""
        return (
            self.pops
            + self.edge_relaxations
            + self.merge_comparisons
        )

    @classmethod
    def sum(cls, counts: "Iterable[OpCounts]") -> "OpCounts":
        """Field-wise sum of many counters in one bulk reduction.

        The per-source lists of a full APSP run hold one ``OpCounts``
        per vertex; folding them with repeated ``+=`` pays one
        dataclass method call per element.  Transposing once and
        reducing each column with the C-level :func:`sum` is measurably
        faster (``benchmarks/bench_kernels.py``) and keeps exact Python
        integers, so huge runs cannot overflow a fixed-width dtype.
        """
        cols = zip(
            *(
                (
                    c.pops,
                    c.edge_relaxations,
                    c.edge_improvements,
                    c.row_merges,
                    c.merge_comparisons,
                    c.flag_hits,
                )
                for c in counts
            )
        )
        totals = [sum(col) for col in cols]
        if not totals:  # zip(*()) on an empty iterable yields nothing
            return cls()
        return cls(*totals)

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        self.pops += other.pops
        self.edge_relaxations += other.edge_relaxations
        self.edge_improvements += other.edge_improvements
        self.row_merges += other.row_merges
        self.merge_comparisons += other.merge_comparisons
        self.flag_hits += other.flag_hits
        return self

    def __add__(self, other: "OpCounts") -> "OpCounts":
        out = OpCounts()
        out += self
        out += other
        return out

    def as_dict(self) -> Dict[str, int]:
        return {
            "pops": self.pops,
            "edge_relaxations": self.edge_relaxations,
            "edge_improvements": self.edge_improvements,
            "row_merges": self.row_merges,
            "merge_comparisons": self.merge_comparisons,
            "flag_hits": self.flag_hits,
        }


@dataclass
class PhaseTimes:
    """Per-phase timing breakdown of an APSP run.

    The paper reports the ordering phase and the iterative-Dijkstra phase
    separately (Table 1, Figures 4–6 vs Figure 5), so the runner tracks
    them separately too.  Units are seconds for real backends and virtual
    time units for the ``SIM`` backend.
    """

    ordering: float = 0.0
    dijkstra: float = 0.0
    #: bookkeeping outside the two main phases (allocation, setup)
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.ordering + self.dijkstra + self.other

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.ordering, self.dijkstra, self.other)


# Array dtype conventions used across the code base.  Degrees and vertex
# ids fit comfortably in int64; distances are float64 so INF is exact.
VERTEX_DTYPE = np.int64
WEIGHT_DTYPE = np.float64
