"""ASCII Gantt rendering of simulated execution traces.

Turn a traced :class:`~repro.simx.trace.SimResult` into a per-thread
timeline so scheduling pathologies — a block-partitioned straggler, a
lock convoy — are visible at a glance:

    t0 |██████████░░                        |
    t1 |████  ████████                      |
    t2 |▒▒▒▒██████                          |

``█`` busy (iteration / lock hold), ``▒`` lock wait, ``░`` other
overhead; blanks are idle.
"""

from __future__ import annotations

from typing import List

from ..exceptions import SimulationError
from .trace import SimResult

__all__ = ["render_gantt"]

_BUSY = "#"
_WAIT = "~"
_IDLE = " "


def render_gantt(
    result: SimResult, *, width: int = 72, label: str = "t"
) -> str:
    """Render a traced result as one text row per thread.

    Requires the simulation to have been run with ``trace=True``;
    raises otherwise (an empty event list cannot be distinguished from
    an untraced run, so zero events on a nonzero makespan is rejected).
    """
    if width < 8:
        raise SimulationError("gantt width must be >= 8")
    if not result.events:
        if result.makespan > 0 and result.total_busy > 0:
            raise SimulationError(
                "no trace events — run the simulation with trace=True"
            )
        return f"{label}0 |{_IDLE * width}|"
    span = result.makespan or 1.0

    def col(time: float) -> int:
        return min(width - 1, max(0, int(time / span * width)))

    # duration-weighted cell selection: each (thread, column) shows the
    # activity that occupied most of its time slice, so a column full of
    # tiny busy ops separated by long lock waits reads as waiting
    busy_time = [[0.0] * width for _ in range(result.num_threads)]
    wait_time = [[0.0] * width for _ in range(result.num_threads)]
    cell_span = span / width
    for event in result.events:
        sink = wait_time if event.kind == "lock-wait" else busy_time
        a, b = col(event.start), col(event.end)
        for c in range(a, b + 1):
            cell_lo = c * cell_span
            cell_hi = cell_lo + cell_span
            overlap = min(event.end, cell_hi) - max(event.start, cell_lo)
            if overlap > 0 or event.duration == 0:
                sink[event.thread][c] += max(overlap, 0.0)
    rows: List[List[str]] = []
    for t in range(result.num_threads):
        row = []
        for c in range(width):
            if busy_time[t][c] == 0.0 and wait_time[t][c] == 0.0:
                row.append(_IDLE)
            elif wait_time[t][c] > busy_time[t][c]:
                row.append(_WAIT)
            else:
                row.append(_BUSY)
        rows.append(row)
    pad = len(f"{label}{result.num_threads - 1}")
    lines = [
        f"{(label + str(t)).rjust(pad)} |{''.join(row)}|"
        for t, row in enumerate(rows)
    ]
    lines.append(
        f"{' ' * pad}  0{' ' * (width - len(f'{span:.3g}') - 1)}"
        f"{span:.3g}"
    )
    lines.append(
        f"{' ' * pad}  {_BUSY}=busy  {_WAIT}=lock wait  (blank=idle)"
    )
    return "\n".join(lines)
