"""ASCII Gantt rendering of simulated execution traces.

Turn a traced :class:`~repro.simx.trace.SimResult` — or a unified
:class:`~repro.trace.model.Trace` — into a per-thread timeline so
scheduling pathologies (a block-partitioned straggler, a lock convoy)
are visible at a glance:

    t0 |##########..                        |
    t1 |####  ########                      |
    t2 |~~~~######..                        |

``#`` busy (iteration / lock hold), ``~`` lock wait, ``.`` other
overhead (fork/join, dispatch, handoff); blanks are idle.
"""

from __future__ import annotations

from typing import List, Tuple

from ..exceptions import SimulationError
from .trace import SimResult

__all__ = ["render_gantt"]

_BUSY = "#"
_WAIT = "~"
_OVER = "."
_IDLE = " "

#: rendering bucket indices (cell shows the dominant one; busy wins ties)
_B_BUSY, _B_WAIT, _B_OVER = 0, 1, 2


def _sim_cells(result: SimResult) -> Tuple[List, float, int]:
    """(track, start, end, bucket) rows from a traced SimResult."""
    if not result.events:
        if result.makespan > 0 and result.total_busy > 0:
            raise SimulationError(
                "no trace events — run the simulation with trace=True"
            )
        return [], float(result.makespan), result.num_threads
    rows = []
    for e in result.events:
        if e.kind == "lock-wait":
            bucket = _B_WAIT
        elif e.kind in ("overhead", "fault"):
            bucket = _B_OVER
        else:
            bucket = _B_BUSY
        rows.append((e.thread, e.start, e.end, bucket))
    return rows, float(result.makespan), result.num_threads


def _trace_cells(trace) -> Tuple[List, float, int]:
    """(track, start, end, bucket) rows from a unified Trace."""
    if not trace.spans:
        raise SimulationError(
            "no trace events — run the simulation with trace=True"
        )
    buckets = {"compute": _B_BUSY, "lock-wait": _B_WAIT, "overhead": _B_OVER}
    rows = [
        (s.track, s.start, s.end, buckets[s.category]) for s in trace.spans
    ]
    return rows, float(trace.makespan), trace.num_tracks


def render_gantt(
    result, *, width: int = 72, label: str = "t"
) -> str:
    """Render a traced result as one text row per thread.

    ``result`` may be a :class:`~repro.simx.trace.SimResult` (from a
    traced simulation) or a unified :class:`~repro.trace.model.Trace`
    (from :func:`repro.trace.trace_from_apsp_result` — multi-phase
    timelines render on one shared axis).

    Requires the simulation to have been run with ``trace=True``;
    raises otherwise (an empty event list cannot be distinguished from
    an untraced run, so zero events on a nonzero makespan is rejected).
    """
    if width < 8:
        raise SimulationError("gantt width must be >= 8")
    if isinstance(result, SimResult):
        cells, span, tracks = _sim_cells(result)
    else:
        cells, span, tracks = _trace_cells(result)
    if not cells:
        return f"{label}0 |{_IDLE * width}|"
    span = span or 1.0

    def col(time: float) -> int:
        return min(width - 1, max(0, int(time / span * width)))

    # duration-weighted cell selection: each (thread, column) shows the
    # activity that occupied most of its time slice, so a column full of
    # tiny busy ops separated by long lock waits reads as waiting
    acc = [
        [[0.0, 0.0, 0.0] for _ in range(width)] for _ in range(tracks)
    ]
    cell_span = span / width
    for track, start, end, bucket in cells:
        a, b = col(start), col(end)
        for c in range(a, b + 1):
            cell_lo = c * cell_span
            cell_hi = cell_lo + cell_span
            overlap = min(end, cell_hi) - max(start, cell_lo)
            if overlap > 0 or end == start:
                acc[track][c][bucket] += max(overlap, 0.0)
    glyphs = {_B_BUSY: _BUSY, _B_WAIT: _WAIT, _B_OVER: _OVER}
    rows: List[List[str]] = []
    for t in range(tracks):
        row = []
        for c in range(width):
            busy, wait, over = acc[t][c]
            if busy == 0.0 and wait == 0.0 and over == 0.0:
                row.append(_IDLE)
            elif busy >= wait and busy >= over:
                row.append(glyphs[_B_BUSY])
            elif wait >= over:
                row.append(glyphs[_B_WAIT])
            else:
                row.append(glyphs[_B_OVER])
        rows.append(row)
    pad = len(f"{label}{tracks - 1}")
    lines = [
        f"{(label + str(t)).rjust(pad)} |{''.join(row)}|"
        for t, row in enumerate(rows)
    ]
    lines.append(
        f"{' ' * pad}  0{' ' * (width - len(f'{span:.3g}') - 1)}"
        f"{span:.3g}"
    )
    lines.append(
        f"{' ' * pad}  {_BUSY}=busy  {_WAIT}=lock wait  "
        f"{_OVER}=overhead  (blank=idle)"
    )
    return "\n".join(lines)
