"""Execution-trace records produced by the simulator.

Every simulated run returns a :class:`SimResult`; analyses that need to
see *why* a makespan came out the way it did (Gantt-style inspection,
contention attribution) enable tracing and get :class:`TraceEvent`
records per executed item.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

import numpy as np

from ..exceptions import SimulationError

__all__ = ["EVENT_KINDS", "TraceEvent", "SimResult"]

#: the event kinds a simulator may emit; anything else is rejected so a
#: typo'd kind cannot silently fall through downstream attribution.
#: "fault" marks injected misbehaviour (deaths, stalls) from
#: :mod:`repro.faults` so recovery phases are visible in every viewer.
EVENT_KINDS = ("iter", "lock-wait", "lock-hold", "overhead", "fault")


@dataclass(frozen=True)
class TraceEvent:
    """One simulated unit of work (a loop iteration or a lock section).

    ``label`` names the event source for attribution: the lock's
    human-readable name for lock events (``"parbuckets.bin17"``), or the
    overhead flavour (``"fork-join"`` / ``"dispatch"`` / ``"handoff"``)
    for overhead events.  Empty means "derive a name from item/kind".
    """

    item: int  # iteration index, or lock id for lock events
    thread: int
    start: float
    end: float
    kind: str = "iter"  # one of EVENT_KINDS
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"trace event ends before it starts: {self}"
            )
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown trace event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.thread < 0:
            raise SimulationError(
                f"trace event thread must be >= 0, got {self.thread}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def name(self) -> str:
        """Display name: the explicit label, or one derived from kind."""
        if self.label:
            return self.label
        if self.kind == "iter":
            return f"iter {self.item}"
        if self.kind in ("lock-wait", "lock-hold"):
            return f"lock_{self.item}"
        return self.kind


@dataclass
class SimResult:
    """Outcome of one simulated parallel region (or whole algorithm).

    ``makespan`` is the virtual elapsed time of the region: the latest
    per-thread finish time.  ``busy`` is per-thread useful work;
    ``overhead`` is per-thread time lost to fork/join, dispatch, lock
    waits and handoffs.  Conservation: for every thread,
    ``busy + overhead + idle == makespan``.
    """

    num_threads: int
    makespan: float
    busy: np.ndarray  # float64[num_threads]
    overhead: np.ndarray  # float64[num_threads]
    events: List[TraceEvent] = field(default_factory=list)
    #: number of lock acquisitions that had to wait (contended)
    contended_acquisitions: int = 0
    #: total lock acquisitions
    total_acquisitions: int = 0
    #: free-form provenance (schedule policy, chunk size, region name);
    #: carried into the unified trace so attribution never has to guess
    #: which policy produced a timeline
    meta: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.busy = np.asarray(self.busy, dtype=np.float64)
        self.overhead = np.asarray(self.overhead, dtype=np.float64)
        if self.busy.shape != (self.num_threads,):
            raise SimulationError("busy vector shape mismatch")
        if self.overhead.shape != (self.num_threads,):
            raise SimulationError("overhead vector shape mismatch")
        if self.makespan < 0:
            raise SimulationError("negative makespan")
        slack = 1e-6 * max(1.0, self.makespan)
        if np.any(self.busy + self.overhead > self.makespan + slack):
            raise SimulationError(
                "thread busy+overhead exceeds makespan: "
                f"{(self.busy + self.overhead).max()} > {self.makespan}"
            )

    @property
    def idle(self) -> np.ndarray:
        """Per-thread idle time (load imbalance + waiting at the join)."""
        return self.makespan - self.busy - self.overhead

    @property
    def total_busy(self) -> float:
        return float(self.busy.sum())

    @property
    def total_overhead(self) -> float:
        return float(self.overhead.sum())

    @property
    def utilization(self) -> float:
        """Fraction of thread-time spent on useful work."""
        if self.makespan == 0:
            return 1.0
        return self.total_busy / (self.makespan * self.num_threads)

    def as_metrics(self, prefix: str = "sim") -> Dict[str, float]:
        """Flat gauge mapping for the :mod:`repro.obs` artifact layer."""
        return {
            f"{prefix}.threads": float(self.num_threads),
            f"{prefix}.makespan": float(self.makespan),
            f"{prefix}.busy_total": self.total_busy,
            f"{prefix}.overhead_total": self.total_overhead,
            f"{prefix}.idle_total": float(self.idle.sum()),
            f"{prefix}.utilization": float(self.utilization),
            f"{prefix}.lock_acquisitions": float(self.total_acquisitions),
            f"{prefix}.lock_contended": float(self.contended_acquisitions),
        }

    def merge_sequential(self, other: "SimResult") -> "SimResult":
        """Concatenate two phases executed back to back.

        Thread counts may differ (e.g. a sequential ordering phase
        followed by a parallel Dijkstra phase); the result reports the
        wider thread count, padding the narrower phase's vectors.
        Events keep their kind and label, shifted by this phase's
        makespan.  ``meta`` keys merge with the earlier phase winning on
        collision (the region that started the timeline names it).
        """
        width = max(self.num_threads, other.num_threads)

        def pad(arr: np.ndarray) -> np.ndarray:
            out = np.zeros(width)
            out[: arr.size] = arr
            return out

        offset = self.makespan
        shifted = [
            replace(e, start=e.start + offset, end=e.end + offset)
            for e in other.events
        ]
        return SimResult(
            num_threads=width,
            makespan=self.makespan + other.makespan,
            busy=pad(self.busy) + pad(other.busy),
            overhead=pad(self.overhead) + pad(other.overhead),
            events=[*self.events, *shifted],
            contended_acquisitions=(
                self.contended_acquisitions + other.contended_acquisitions
            ),
            total_acquisitions=self.total_acquisitions + other.total_acquisitions,
            meta={**other.meta, **self.meta},
        )
