"""Discrete-event simulator of a shared-memory multicore machine.

This package is the substitution for the paper's 16/32-core OpenMP
testbeds (DESIGN.md §1): deterministic virtual-time execution of
parallel loops and lock-guarded thread programs on a parameterised
:class:`MachineSpec`.

Layering: ``simx`` is algorithm-agnostic.  The APSP-specific simulation
(flag-reuse interleaving) lives in :mod:`repro.core.simulate`; the
ordering-procedure simulations live next to their algorithms in
:mod:`repro.order`.
"""

from .engine import ThreadClockQueue
from .gantt import render_gantt
from .locksim import Op, run_lock_program
from .machine import MACHINE_I, MACHINE_II, MachineSpec, default_machine
from .parfor import ParForOutcome, simulate_parallel_for
from .trace import SimResult, TraceEvent

__all__ = [
    "ThreadClockQueue",
    "render_gantt",
    "Op",
    "run_lock_program",
    "MACHINE_I",
    "MACHINE_II",
    "MachineSpec",
    "default_machine",
    "ParForOutcome",
    "simulate_parallel_for",
    "SimResult",
    "TraceEvent",
]
