"""Virtual-time simulation of lock-guarded thread programs.

The ordering procedures of §4 are, from the machine's point of view,
straight-line programs per thread: *do some private work, take a lock,
hold it briefly, release, repeat*.  This module plays such programs
forward on a :class:`~repro.simx.machine.MachineSpec` with FIFO lock
semantics and the crucial cost asymmetry between an uncontended acquire
and a contended handoff — the asymmetry that makes ParBuckets *slower*
at 16 threads than at 1 (Table 1), because nearly every vertex of a
power-law graph lands in the same few low-degree buckets.

A program is a list (one entry per thread) of :class:`Op` sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import SimulationError
from .engine import ThreadClockQueue
from .machine import MachineSpec
from .trace import SimResult, TraceEvent

__all__ = ["Op", "run_lock_program"]


@dataclass(frozen=True)
class Op:
    """One step of a thread program.

    ``work`` is private computation (no sharing).  When ``lock_id`` is
    not ``None`` the thread then acquires that lock, holds it for the
    machine's ``critical_section`` cost (times ``cs_scale``), and
    releases.  ``false_sharing`` adds the machine's false-sharing
    penalty to the private work (used for adjacent shared-array writes).
    ``name`` labels the private-work trace event (e.g. ``"fill"``).
    """

    work: float = 0.0
    lock_id: Optional[int] = None
    cs_scale: float = 1.0
    false_sharing: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.work < 0:
            raise SimulationError("op work must be >= 0")
        if self.cs_scale < 0:
            raise SimulationError("cs_scale must be >= 0")


def run_lock_program(
    programs: Sequence[Sequence[Op]],
    machine: MachineSpec,
    *,
    num_locks: int = 0,
    charge_fork_join: bool = True,
    trace: bool = False,
    lock_names: Optional[Sequence[str]] = None,
    region: str = "",
) -> SimResult:
    """Simulate ``len(programs)`` threads running their op lists.

    Lock semantics: a lock is a single server with a FIFO queue in
    virtual time.  A thread arriving at a free lock pays
    ``lock_uncontended``; a thread arriving while the lock is busy (or
    was last released to another waiter "just now") waits until the lock
    frees and pays ``lock_handoff`` on top — modelling the cache-line
    bounce and wakeup latency of a contended mutex.

    ``lock_names`` labels lock trace events (index = lock id) so
    contention attribution can name the algorithm's actual structure
    ("parmax.deg3") instead of an anonymous ``lock_3``.  ``region``
    names the whole program in ``SimResult.meta``.
    """
    T = len(programs)
    if T == 0:
        raise SimulationError("need at least one thread program")
    if T > machine.num_cores:
        raise SimulationError(
            f"{T} thread programs exceed the machine's {machine.num_cores} cores"
        )
    max_lock = -1
    for prog in programs:
        for op in prog:
            if op.lock_id is not None and op.lock_id > max_lock:
                max_lock = op.lock_id
    if num_locks <= max_lock:
        num_locks = max_lock + 1

    start = machine.region_overhead(T) if charge_fork_join else 0.0
    queue = ThreadClockQueue(T, start_time=start)
    busy = np.zeros(T, dtype=np.float64)
    overhead = np.full(T, start, dtype=np.float64)
    lock_free_at = np.zeros(num_locks, dtype=np.float64)
    cursors = [0] * T
    # a thread whose current op did private work first parks its lock
    # request here, so the acquire happens at the *arrival* time and
    # competing arrivals are granted in true global time order
    pending_lock: List[Optional[Op]] = [None] * T
    done = [len(p) == 0 for p in programs]
    finish = [start] * T
    contended = 0
    total_acq = 0
    events: List[TraceEvent] = []

    def lock_label(lock_id: int) -> str:
        if lock_names is not None and 0 <= lock_id < len(lock_names):
            return lock_names[lock_id]
        return f"lock_{lock_id}"

    if trace and start:
        events.extend(
            TraceEvent(-1, t, 0.0, start, kind="overhead", label="fork-join")
            for t in range(T)
        )

    while not all(done):
        time, thread = queue.pop_earliest()
        if done[thread]:
            queue.advance(thread, float("inf"))
            continue

        op = pending_lock[thread]
        if op is not None:
            # stage 2: the thread arrived at the lock at `time`
            pending_lock[thread] = None
            total_acq += 1
            free_at = lock_free_at[op.lock_id]  # type: ignore[index]
            if free_at <= time:
                acquire_done = time + machine.lock_uncontended
                overhead[thread] += machine.lock_uncontended
            else:
                contended += 1
                wait = free_at - time
                # queue depth at this lock, inferred from how far ahead
                # its release horizon sits; deeper queues mean costlier
                # handoffs (more cores bouncing the same cache line)
                hold_est = machine.lock_handoff + machine.critical_section
                depth = min(wait / hold_est if hold_est else 0.0, T - 1)
                handoff = machine.lock_handoff * (
                    1.0
                    + machine.handoff_waiter_scaling
                    * depth
                    / max(1, machine.num_cores - 1)
                )
                acquire_done = free_at + handoff
                overhead[thread] += wait + handoff
                if trace:
                    events.append(
                        TraceEvent(
                            op.lock_id, thread, time, free_at,
                            kind="lock-wait", label=lock_label(op.lock_id),
                        )
                    )
                    events.append(
                        TraceEvent(
                            op.lock_id, thread, free_at, acquire_done,
                            kind="overhead", label="handoff",
                        )
                    )
            hold = machine.critical_section * op.cs_scale
            release_at = acquire_done + hold
            busy[thread] += hold
            if trace:
                events.append(
                    TraceEvent(
                        op.lock_id, thread, acquire_done, release_at,
                        kind="lock-hold", label=lock_label(op.lock_id),
                    )
                )
            lock_free_at[op.lock_id] = release_at  # type: ignore[index]
            if cursors[thread] >= len(programs[thread]):
                done[thread] = True
            finish[thread] = release_at
            queue.advance(thread, release_at)
            continue

        # stage 1: start the next op's private work
        prog = programs[thread]
        op = prog[cursors[thread]]
        cursors[thread] += 1
        work = op.work + (
            machine.false_sharing_penalty if op.false_sharing else 0.0
        )
        if work:
            busy[thread] += work
            if trace:
                events.append(
                    TraceEvent(
                        cursors[thread] - 1, thread, time, time + work,
                        label=op.name,
                    )
                )
        if op.lock_id is not None:
            pending_lock[thread] = op
        elif cursors[thread] >= len(prog):
            done[thread] = True
        finish[thread] = time + work
        queue.advance(thread, time + work)

    makespan = max(finish)
    return SimResult(
        num_threads=T,
        makespan=float(makespan),
        busy=busy,
        overhead=overhead,
        events=events,
        contended_acquisitions=contended,
        total_acquisitions=total_acq,
        meta={"region": region} if region else {},
    )
