"""Minimal deterministic discrete-event core.

The simulator's loops all reduce to the same pattern: a set of virtual
threads, each with a clock, where the globally-earliest thread acts
next.  :class:`ThreadClockQueue` provides that with deterministic
tie-breaking (lowest thread id first), which keeps every simulation
bit-reproducible across runs and platforms.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..exceptions import SimulationError

__all__ = ["ThreadClockQueue"]


class ThreadClockQueue:
    """Priority queue of ``(clock, thread_id)`` with stable ordering.

    The queue counts its own churn (``pops`` / ``advances`` / skipped
    stale entries) so the observability layer can report how much
    dispatcher work a simulated schedule generated; plain integer
    increments keep the event loop's cost unchanged.
    """

    __slots__ = ("_heap", "_clocks", "pops", "advances", "stale_skips")

    def __init__(self, num_threads: int, start_time: float = 0.0) -> None:
        if num_threads < 1:
            raise SimulationError(f"need >= 1 thread, got {num_threads}")
        self._clocks: List[float] = [start_time] * num_threads
        self._heap: List[Tuple[float, int]] = [
            (start_time, t) for t in range(num_threads)
        ]
        heapq.heapify(self._heap)
        self.pops = 0
        self.advances = 0
        self.stale_skips = 0

    def __len__(self) -> int:
        return len(self._heap)

    def pop_earliest(self) -> Tuple[float, int]:
        """Remove and return the thread with the smallest clock.

        Stale heap entries (from re-pushes) are skipped by comparing with
        the authoritative clock table.
        """
        while self._heap:
            time, thread = heapq.heappop(self._heap)
            if time == self._clocks[thread]:
                self.pops += 1
                return time, thread
            self.stale_skips += 1
        raise SimulationError("pop from drained thread queue")

    def advance(self, thread: int, new_time: float) -> None:
        """Move a thread's clock forward and requeue it."""
        if new_time < self._clocks[thread]:
            raise SimulationError(
                f"thread {thread} clock would go backwards: "
                f"{self._clocks[thread]} -> {new_time}"
            )
        self._clocks[thread] = new_time
        self.advances += 1
        heapq.heappush(self._heap, (new_time, thread))

    def clock(self, thread: int) -> float:
        return self._clocks[thread]

    def clocks(self) -> List[float]:
        return list(self._clocks)

    @property
    def latest(self) -> float:
        return max(self._clocks)
