"""Simulated OpenMP ``parallel for`` in virtual time.

Given per-iteration costs — either a precomputed array, or a callback
evaluated at dispatch time for cost models with history dependence (the
modified Dijkstra's flag reuse) — this module plays out the loop under a
scheduling policy on a :class:`~repro.simx.machine.MachineSpec` and
reports the makespan, per-thread busy/overhead time and per-iteration
start/end times.

Scheduling semantics match the real backends exactly:

* ``BLOCK`` / ``STATIC_CYCLIC`` — fixed assignments from
  :func:`repro.parallel.schedule.static_assignment`; each thread walks
  its list in order.
* ``DYNAMIC`` — whenever a thread becomes free it claims the globally
  next unissued iteration (chunk 1 preserves issue order, the property
  ParAlg2 needs), paying ``dispatch_overhead`` per claim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

import numpy as np

from ..exceptions import SimulationError
from ..obs import metrics as _obs
from ..parallel.schedule import static_assignment
from ..types import Schedule
from .engine import ThreadClockQueue
from .machine import MachineSpec
from .trace import SimResult, TraceEvent

__all__ = ["ParForOutcome", "simulate_parallel_for"]

#: cost callback signature: (iteration, dispatch_time, thread) -> cost
CostFn = Callable[[int, float, int], float]


@dataclass
class ParForOutcome:
    """Everything a caller might need about a simulated loop."""

    result: SimResult
    #: virtual time each iteration was dispatched at
    start_times: np.ndarray
    #: virtual time each iteration completed at
    end_times: np.ndarray
    #: which simulated thread ran each iteration
    thread_of: np.ndarray
    #: iterations in dispatch order (global issue order)
    issue_order: np.ndarray
    #: the schedule policy that produced this timeline (e.g.
    #: "dynamic-cyclic"); attribution reports it instead of guessing
    schedule: str = ""
    #: chunk size the policy ran with
    chunk: int = 1


def _as_cost_fn(
    costs: Union[Sequence[float], np.ndarray, CostFn],
) -> CostFn:
    if callable(costs):
        return costs
    arr = np.asarray(costs, dtype=np.float64)
    if arr.ndim != 1:
        raise SimulationError("cost array must be one-dimensional")
    if arr.size and arr.min() < 0:
        raise SimulationError("iteration costs must be non-negative")

    def fn(i: int, _time: float, _thread: int) -> float:
        return float(arr[i])

    return fn


def simulate_parallel_for(
    n: int,
    costs: Union[Sequence[float], np.ndarray, CostFn],
    machine: MachineSpec,
    *,
    num_threads: int,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    cost_multiplier: float = 1.0,
    trace: bool = False,
    fault_plan=None,
) -> ParForOutcome:
    """Play a parallel loop of ``n`` iterations forward in virtual time.

    ``cost_multiplier`` scales every iteration cost (pass
    ``machine.memory_cost_multiplier(T)`` for memory-bound phases).

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) replays worker
    misbehaviour as virtual-time events: a killed thread stops acting
    and its claimed-but-unexecuted iterations re-enter the work queue,
    re-issued to survivors as ``recovery``-labelled iterations; a stall
    is virtual overhead time.  The fault-free path is untouched — its
    timings and scheduler-op counts stay bit-identical to the seed.
    """
    schedule = Schedule.coerce(schedule)
    if n < 0:
        raise SimulationError(f"iteration count must be >= 0, got {n}")
    if cost_multiplier <= 0:
        raise SimulationError("cost multiplier must be positive")
    T = machine.clamp_threads(num_threads)
    cost_fn = _as_cost_fn(costs)
    if fault_plan is not None:
        return _simulate_with_faults(
            n, cost_fn, machine, T, schedule, chunk, cost_multiplier,
            trace, fault_plan,
        )

    start_times = np.zeros(n, dtype=np.float64)
    end_times = np.zeros(n, dtype=np.float64)
    thread_of = np.zeros(n, dtype=np.int64)
    issue_order: List[int] = []
    busy = np.zeros(T, dtype=np.float64)
    region_cost = machine.region_overhead(T)
    overhead = np.full(T, region_cost, dtype=np.float64)
    events: List[TraceEvent] = []
    if trace and region_cost:
        events.extend(
            TraceEvent(-1, t, 0.0, region_cost, kind="overhead",
                       label="fork-join")
            for t in range(T)
        )

    queue = ThreadClockQueue(T, start_time=region_cost)

    if schedule is Schedule.DYNAMIC:
        # each thread claims a chunk when free; within a chunk it runs
        # iterations back to back without re-dispatching
        cursor = 0
        while cursor < n:
            time, thread = queue.pop_earliest()
            end = min(cursor + chunk, n)
            my_chunk = range(cursor, end)
            cursor = end
            t_clock = time + machine.dispatch_overhead
            overhead[thread] += machine.dispatch_overhead
            if trace and machine.dispatch_overhead:
                events.append(
                    TraceEvent(-1, thread, time, t_clock, kind="overhead",
                               label="dispatch")
                )
            for i in my_chunk:
                duration = cost_fn(i, t_clock, thread) * cost_multiplier
                if not duration >= 0:  # also rejects NaN
                    raise SimulationError(
                        f"invalid cost for iteration {i}: {duration!r}"
                    )
                start_times[i] = t_clock
                end_times[i] = t_clock + duration
                thread_of[i] = thread
                issue_order.append(i)
                busy[thread] += duration
                if trace:
                    events.append(
                        TraceEvent(i, thread, t_clock, t_clock + duration)
                    )
                t_clock += duration
            queue.advance(thread, t_clock)
        makespan = queue.latest
    else:
        assignment = static_assignment(schedule, n, T, chunk)
        cursors = [0] * T
        remaining = n
        while remaining:
            time, thread = queue.pop_earliest()
            mine = assignment[thread]
            if cursors[thread] >= len(mine):
                # thread drained; park it at +inf so it never pops again
                queue.advance(thread, float("inf"))
                continue
            i = int(mine[cursors[thread]])
            cursors[thread] += 1
            duration = cost_fn(i, time, thread) * cost_multiplier
            if not duration >= 0:  # also rejects NaN
                raise SimulationError(
                    f"invalid cost for iteration {i}: {duration!r}"
                )
            start_times[i] = time
            end_times[i] = time + duration
            thread_of[i] = thread
            issue_order.append(i)
            busy[thread] += duration
            if trace:
                events.append(TraceEvent(i, thread, time, time + duration))
            queue.advance(thread, time + duration)
            remaining -= 1
        finite = [c for c in queue.clocks() if c != float("inf")]
        makespan = max(finite) if finite else region_cost
        if n:
            makespan = max(makespan, float(end_times.max()))
        else:
            makespan = region_cost

    if n == 0:
        makespan = region_cost

    result = SimResult(
        num_threads=T,
        makespan=float(makespan),
        busy=busy,
        overhead=overhead,
        events=events,
        meta={"schedule": schedule.value, "chunk": str(chunk)},
    )
    reg = _obs._current
    if reg is not None:
        reg.add("sim.parfor.regions", 1)
        reg.add("sim.parfor.iterations", n)
        reg.add("sim.clock.pops", queue.pops)
        reg.add("sim.clock.advances", queue.advances)
        reg.add("sim.clock.stale_skips", queue.stale_skips)
    return ParForOutcome(
        result=result,
        start_times=start_times,
        end_times=end_times,
        thread_of=thread_of,
        issue_order=np.asarray(issue_order, dtype=np.int64),
        schedule=schedule.value,
        chunk=chunk,
    )


def _simulate_with_faults(
    n: int,
    cost_fn: CostFn,
    machine: MachineSpec,
    T: int,
    schedule: Schedule,
    chunk: int,
    cost_multiplier: float,
    trace: bool,
    fault_plan,
) -> ParForOutcome:
    """Fault-replaying twin of the clean simulation loops.

    Kept separate so plan-free simulations execute exactly the seed's
    code (the ``sim.clock.*`` op counters are exact-gated in committed
    bench baselines).  Model: faults fire at claim/iteration boundaries
    in deterministic claim/iteration counts, a dead thread leaves the
    event rotation with its clock frozen at the death time, and its
    lost iterations re-enter a recovery queue that any surviving thread
    drains dynamic-style (paying dispatch overhead, events labelled
    ``recovery``).  Each iteration's cost callback still runs exactly
    once — history-dependent cost models stay valid.
    """
    from ..faults.plan import RAISE, STALL

    bound = fault_plan.bind(T)
    specs: List[List] = [list(bound.for_worker(t)) for t in range(T)]
    claims = [0] * T

    start_times = np.zeros(n, dtype=np.float64)
    end_times = np.zeros(n, dtype=np.float64)
    thread_of = np.zeros(n, dtype=np.int64)
    issue_order: List[int] = []
    busy = np.zeros(T, dtype=np.float64)
    region_cost = machine.region_overhead(T)
    overhead = np.full(T, region_cost, dtype=np.float64)
    events: List[TraceEvent] = []
    if trace and region_cost:
        events.extend(
            TraceEvent(-1, t, 0.0, region_cost, kind="overhead",
                       label="fork-join")
            for t in range(T)
        )
    queue = ThreadClockQueue(T, start_time=region_cost)

    dead = [False] * T
    #: live threads that popped with nothing to claim; woken on requeue
    idle_waiting: List[int] = []
    requeued: "deque[List[int]]" = deque()
    deaths = stalls = requeued_iters = 0
    executed = 0
    cursor = 0  # dynamic issue cursor
    dynamic = schedule is Schedule.DYNAMIC
    if dynamic:
        assignment: List[List[int]] = []
        cursors: List[int] = []
    else:
        assignment = [
            [int(i) for i in a]
            for a in static_assignment(schedule, n, T, chunk)
        ]
        cursors = [0] * T

    def claim_faults(t: int):
        """Advance t's claim count; return (stall_time, fatal_spec)."""
        nonlocal stalls
        claims[t] += 1
        stall = 0.0
        fatal = None
        keep = []
        for s in specs[t]:
            if s.kind == RAISE or claims[t] < s.after_claims:
                keep.append(s)
            elif s.kind == STALL:
                stall += s.seconds
                stalls += 1
            elif fatal is None:
                fatal = s
            else:
                keep.append(s)
        specs[t] = keep
        return stall, fatal

    def iteration_fault(t: int, i: int):
        for s in specs[t]:
            if s.kind == RAISE and s.iteration == i:
                specs[t] = [x for x in specs[t] if x is not s]
                return s
        return None

    def kill(t: int, time: float, spec, lost: List[int]) -> None:
        nonlocal deaths, requeued_iters
        deaths += 1
        dead[t] = True
        if trace:
            events.append(
                TraceEvent(-1, t, time, time, kind="fault",
                           label=f"death({spec.kind})")
            )
        if lost:
            requeued.append(list(lost))
            requeued_iters += len(lost)
            # the lost work exists again as of the death time: wake any
            # survivor that parked because nothing was claimable
            while idle_waiting:
                w = idle_waiting.pop()
                queue.advance(w, max(queue.clock(w), time))

    while executed < n:
        if len(queue) == 0:
            raise SimulationError(
                "fault plan killed every simulated thread with "
                f"{n - executed} iteration(s) still unexecuted"
            )
        time, thread = queue.pop_earliest()
        if dead[thread]:
            continue  # removed from the rotation
        recovery = False
        if requeued:
            items = requeued.popleft()
            recovery = True
        elif dynamic and cursor < n:
            end = min(cursor + chunk, n)
            items = list(range(cursor, end))
            cursor = end
        elif not dynamic and cursors[thread] < len(assignment[thread]):
            # the whole static assignment is one implicit claim
            items = assignment[thread][cursors[thread]:]
            cursors[thread] = len(assignment[thread])
        else:
            # nothing claimable now; work may reappear if a peer dies
            idle_waiting.append(thread)
            continue

        t_clock = time
        if (recovery or dynamic) and machine.dispatch_overhead:
            overhead[thread] += machine.dispatch_overhead
            if trace:
                events.append(
                    TraceEvent(-1, thread, t_clock,
                               t_clock + machine.dispatch_overhead,
                               kind="overhead", label="dispatch")
                )
            t_clock += machine.dispatch_overhead
        stall, fatal = claim_faults(thread)
        if stall:
            overhead[thread] += stall
            if trace:
                events.append(
                    TraceEvent(-1, thread, t_clock, t_clock + stall,
                               kind="fault", label="stall")
                )
            t_clock += stall
        if fatal is not None:
            kill(thread, t_clock, fatal, items)
            queue.advance(thread, t_clock)  # freeze clock at death time
            continue
        died = False
        for pos, i in enumerate(items):
            spec = iteration_fault(thread, i)
            if spec is not None:
                kill(thread, t_clock, spec, items[pos:])
                died = True
                break
            duration = cost_fn(i, t_clock, thread) * cost_multiplier
            if not duration >= 0:  # also rejects NaN
                raise SimulationError(
                    f"invalid cost for iteration {i}: {duration!r}"
                )
            start_times[i] = t_clock
            end_times[i] = t_clock + duration
            thread_of[i] = thread
            issue_order.append(i)
            busy[thread] += duration
            if trace:
                events.append(
                    TraceEvent(i, thread, t_clock, t_clock + duration,
                               label="recovery" if recovery else "")
                )
            t_clock += duration
            executed += 1
        queue.advance(thread, t_clock)
        if died:
            continue

    makespan = float(queue.latest)
    if n:
        makespan = max(makespan, float(end_times.max()))
    else:
        makespan = region_cost

    result = SimResult(
        num_threads=T,
        makespan=makespan,
        busy=busy,
        overhead=overhead,
        events=events,
        meta={
            "schedule": schedule.value,
            "chunk": str(chunk),
            "fault_deaths": str(deaths),
            "fault_stalls": str(stalls),
        },
    )
    reg = _obs._current
    if reg is not None:
        reg.add("sim.parfor.regions", 1)
        reg.add("sim.parfor.iterations", n)
        reg.add("sim.clock.pops", queue.pops)
        reg.add("sim.clock.advances", queue.advances)
        reg.add("sim.clock.stale_skips", queue.stale_skips)
        reg.add("faults.sim.deaths", deaths)
        reg.add("faults.sim.stalls", stalls)
        reg.add("faults.sim.requeued_iterations", requeued_iters)
    return ParForOutcome(
        result=result,
        start_times=start_times,
        end_times=end_times,
        thread_of=thread_of,
        issue_order=np.asarray(issue_order, dtype=np.int64),
        schedule=schedule.value,
        chunk=chunk,
    )
