"""Machine models for the discrete-event simulator.

A :class:`MachineSpec` describes a shared-memory multicore in the
abstract *work-unit* currency of the cost model: one unit is one simple
algorithmic operation (a comparison / relaxation).  All overheads are
expressed in the same units, calibrated against the qualitative numbers
the paper reports (e.g. a contended lock handoff costs two orders of
magnitude more than the guarded work — the effect behind Table 1's
ParBuckets slowdown).

Presets ``MACHINE_I`` and ``MACHINE_II`` mirror the two testbeds of §5.1:

* Machine-I — dual Xeon E5-2670, 16 cores, 2.6 GHz, 128 GB.
* Machine-II — quad Xeon E5-4640, 32 cores, 2.4 GHz, 256 GB.

The simulator does not model frequency differences (results are in work
units, not seconds); what matters is the core count and the relative
overhead constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import SimulationError

__all__ = ["MachineSpec", "MACHINE_I", "MACHINE_II", "default_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost-model parameters of a simulated shared-memory machine.

    Attributes
    ----------
    name:
        Label used in reports.
    num_cores:
        Hardware parallelism; simulations clamp ``num_threads`` to this.
    fork_join_overhead:
        Cost charged to *every* thread per parallel region (OpenMP team
        start-up + barrier at the region end).
    dispatch_overhead:
        Cost per dynamic-schedule chunk claim (the shared-counter
        fetch-and-add plus the scheduling bookkeeping).  Static schedules
        pay nothing per iteration.
    lock_uncontended:
        Cost of acquiring a free lock (atomic CAS hitting a warm line).
    lock_handoff:
        Extra cost when the lock was held or queued on arrival: the
        cache-line bounce plus wakeup latency.  This ≫ ``lock_uncontended``
        asymmetry is what makes lock-heavy parallel code *slower* than
        serial code, as the paper's Table 1 shows for ParBuckets.
    critical_section:
        Cost of the guarded work itself (the list append).
    false_sharing_penalty:
        Extra cost per write when multiple threads write to adjacent
        locations of a shared array (§4.3's reason to keep high-degree
        order[] writes sequential).
    memory_bandwidth_factor:
        Per-unit multiplicative slowdown applied when all cores stream
        memory simultaneously; 0 disables the effect.  Modeled as
        ``1 + factor * (threads - 1) / (cores - 1)`` on per-iteration
        costs of memory-bound phases.
    cache_boost_factor:
        Per-unit *speedup* of memory-bound work as more cores (and with
        them more aggregate last-level cache, across the 2 or 4 sockets
        of the paper's testbeds) become active:
        ``1 / (1 + boost * (threads - 1) / (cores - 1))``.  This is the
        standard mechanism behind the hyper-linear APSP speedups of
        Figures 9–10; the paper's own conjecture (faster availability of
        reusable SSSP rows) is additionally captured operationally by
        the event-driven flag interleaving in :mod:`repro.simx.apsp`.
    """

    name: str
    num_cores: int
    fork_join_overhead: float = 400.0
    dispatch_overhead: float = 12.0
    lock_uncontended: float = 4.0
    lock_handoff: float = 260.0
    critical_section: float = 6.0
    false_sharing_penalty: float = 40.0
    memory_bandwidth_factor: float = 0.04
    cache_boost_factor: float = 0.22
    #: extra handoff cost per queued waiter (cache-line ping-pong and
    #: futex wakeups get costlier the more cores are spinning on the
    #: same line) — this is what makes ParBuckets' ordering time keep
    #: *growing* from 2 to 16 threads in Table 1
    handoff_waiter_scaling: float = 3.4
    #: fork/join cost growth with team size: waking and joining a wider
    #: team costs more (``overhead × (1 + scaling · log2(T))``); drives
    #: MultiLists' slight 8→16-thread dip on small graphs (Figure 6)
    fork_join_scaling: float = 0.35

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise SimulationError(
                f"machine needs >= 1 core, got {self.num_cores}"
            )
        for field_name in (
            "fork_join_overhead",
            "dispatch_overhead",
            "lock_uncontended",
            "lock_handoff",
            "critical_section",
            "false_sharing_penalty",
            "memory_bandwidth_factor",
            "cache_boost_factor",
            "handoff_waiter_scaling",
            "fork_join_scaling",
        ):
            if getattr(self, field_name) < 0:
                raise SimulationError(f"{field_name} must be >= 0")

    def clamp_threads(self, num_threads: int) -> int:
        """Threads beyond the core count time-share; the simulator models
        the paper's setting (hyper-threading disabled, ≤ cores threads) by
        clamping instead."""
        if num_threads < 1:
            raise SimulationError(f"num_threads must be >= 1, got {num_threads}")
        return min(num_threads, self.num_cores)

    def bandwidth_slowdown(self, num_threads: int) -> float:
        """Multiplicative slowdown of memory-bound work at ``num_threads``."""
        if self.num_cores == 1 or self.memory_bandwidth_factor == 0.0:
            return 1.0
        t = self.clamp_threads(num_threads)
        return 1.0 + self.memory_bandwidth_factor * (t - 1) / (self.num_cores - 1)

    def region_overhead(self, num_threads: int) -> float:
        """Per-thread cost of opening+closing one parallel region with a
        team of ``num_threads``."""
        import math

        t = self.clamp_threads(num_threads)
        if t == 1:
            return self.fork_join_overhead
        return self.fork_join_overhead * (
            1.0 + self.fork_join_scaling * math.log2(t)
        )

    def cache_relief(self, num_threads: int) -> float:
        """Multiplicative cost *reduction* of memory-bound work as more
        sockets' caches come online (≤ 1)."""
        if self.num_cores == 1 or self.cache_boost_factor == 0.0:
            return 1.0
        t = self.clamp_threads(num_threads)
        return 1.0 / (
            1.0 + self.cache_boost_factor * (t - 1) / (self.num_cores - 1)
        )

    def memory_cost_multiplier(self, num_threads: int) -> float:
        """Net per-unit cost multiplier for memory-bound phases (the
        iterative Dijkstra sweeps): bandwidth contention × cache relief."""
        return self.bandwidth_slowdown(num_threads) * self.cache_relief(
            num_threads
        )

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Copy with some cost constants replaced (ablation studies)."""
        return replace(self, **kwargs)


#: Machine-I of the paper: dual E5-2670, 16 cores.
MACHINE_I = MachineSpec(name="Machine-I", num_cores=16)

#: Machine-II of the paper: quad E5-4640, 32 cores.
MACHINE_II = MachineSpec(name="Machine-II", num_cores=32)


def default_machine(num_threads: int) -> MachineSpec:
    """Pick the paper's machine for a thread count (≤16 → I, else II)."""
    return MACHINE_I if num_threads <= MACHINE_I.num_cores else MACHINE_II
