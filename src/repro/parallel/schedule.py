"""Loop-iteration scheduling policies (the OpenMP ``schedule`` clause).

The paper's Figure 1 shows that the choice between the default *block*
partitioning, ``schedule(static, 1)`` (static-cyclic) and
``schedule(dynamic, 1)`` (dynamic-cyclic) changes ParAlg2's runtime
substantially, because the optimized algorithm's benefit depends on
issuing SSSP sources in (approximately) descending-degree order.

This module provides the *static* assignment math used by every backend
and by the simulator.  Dynamic scheduling has no static assignment — the
mapping from iterations to threads emerges at runtime — so it is
expressed as a shared work counter (:class:`DynamicCounter`).
"""

from __future__ import annotations

import threading
from typing import List

import numpy as np

from ..exceptions import ScheduleError
from ..obs import metrics as _obs
from ..types import Schedule

__all__ = [
    "block_assignment",
    "static_cyclic_assignment",
    "static_assignment",
    "DynamicCounter",
]


def _check(n: int, num_threads: int, chunk: int) -> None:
    if n < 0:
        raise ScheduleError(f"iteration count must be >= 0, got {n}")
    if num_threads < 1:
        raise ScheduleError(f"num_threads must be >= 1, got {num_threads}")
    if chunk < 1:
        raise ScheduleError(f"chunk must be >= 1, got {chunk}")


def block_assignment(n: int, num_threads: int) -> List[np.ndarray]:
    """OpenMP default: split ``range(n)`` into ``num_threads`` contiguous
    blocks, the first ``n % num_threads`` blocks one element longer.

    Returns one int64 index array per thread (possibly empty).
    """
    _check(n, num_threads, 1)
    base, extra = divmod(n, num_threads)
    out: List[np.ndarray] = []
    start = 0
    for t in range(num_threads):
        size = base + (1 if t < extra else 0)
        out.append(np.arange(start, start + size, dtype=np.int64))
        start += size
    return out


def static_cyclic_assignment(
    n: int, num_threads: int, chunk: int = 1
) -> List[np.ndarray]:
    """``schedule(static, chunk)``: chunks dealt round-robin to threads.

    With ``chunk=1`` thread ``t`` gets iterations ``t, t+T, t+2T, ...`` —
    the static-cyclic scheme of the paper.
    """
    _check(n, num_threads, chunk)
    out: List[List[int]] = [[] for _ in range(num_threads)]
    pos = 0
    t = 0
    while pos < n:
        end = min(pos + chunk, n)
        out[t].extend(range(pos, end))
        pos = end
        t = (t + 1) % num_threads
    return [np.asarray(ix, dtype=np.int64) for ix in out]


def static_assignment(
    schedule: "Schedule | str", n: int, num_threads: int, chunk: int = 1
) -> List[np.ndarray]:
    """Static per-thread assignment for ``BLOCK`` / ``STATIC_CYCLIC``.

    Raises :class:`ScheduleError` for ``DYNAMIC``, which has no static
    assignment — use :class:`DynamicCounter` (real backends) or the
    simulator's event loop instead.
    """
    schedule = Schedule.coerce(schedule)
    if schedule is Schedule.BLOCK:
        return block_assignment(n, num_threads)
    if schedule is Schedule.STATIC_CYCLIC:
        return static_cyclic_assignment(n, num_threads, chunk)
    raise ScheduleError(
        "dynamic schedule has no static assignment; use DynamicCounter"
    )


class DynamicCounter:
    """Shared fetch-and-add work counter for ``schedule(dynamic, chunk)``.

    Threads repeatedly call :meth:`next_chunk` and process the returned
    half-open range until it is empty.  With ``chunk=1`` iterations are
    handed out strictly in index order — exactly the property the paper
    relies on to preserve the descending-degree issue order (§3.2).
    """

    __slots__ = ("_n", "_chunk", "_next", "_lock", "claims")

    def __init__(self, n: int, chunk: int = 1) -> None:
        _check(n, 1, chunk)
        self._n = n
        self._chunk = chunk
        self._next = 0
        self._lock = threading.Lock()
        #: successful (non-empty) chunk claims — the dynamic scheduler's
        #: dispatch count, published as ``schedule.dynamic.claims``
        self.claims = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def chunk(self) -> int:
        return self._chunk

    def next_chunk(self) -> range:
        """Claim the next chunk; empty range means the loop is drained."""
        with self._lock:
            start = self._next
            if start >= self._n:
                return range(self._n, self._n)
            end = min(start + self._chunk, self._n)
            self._next = end
            self.claims += 1
        return range(start, end)

    def publish(self, prefix: str = "schedule.dynamic") -> None:
        """Report claim statistics to the installed metrics registry."""
        reg = _obs._current
        if reg is not None:
            reg.add(f"{prefix}.claims", self.claims)
            reg.add(f"{prefix}.iterations", self._n)

    def remaining(self) -> int:
        with self._lock:
            return max(0, self._n - self._next)
