"""Lock abstractions for the ordering procedures.

ParBuckets (Algorithm 5) and ParMax (Algorithm 6) guard each bucket with
an ``omp_lock_t``.  The real-thread backend uses genuine
``threading.Lock`` objects; the serial backend uses counting no-op locks
so single-threaded runs still report how many acquisitions *would* have
happened (useful for tests and the cost model).

Contention statistics: each acquisition that finds the lock already held
is counted.  For real threads the "already held" observation is made with
a non-blocking ``acquire(False)`` probe followed by a blocking acquire,
which is exact enough for reporting (the probe and the blocking acquire
are not atomic together, but the count is only used descriptively).
"""

from __future__ import annotations

import threading
from typing import List

from ..obs import metrics as _obs

__all__ = ["LockArray", "CountingLock"]


class CountingLock:
    """A lock that counts acquisitions and observed contention."""

    __slots__ = ("_lock", "acquisitions", "contended")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquisitions = 0
        self.contended = 0

    def acquire(self) -> None:
        if self._lock.acquire(blocking=False):
            self.acquisitions += 1
            return
        self.contended += 1
        self._lock.acquire()
        self.acquisitions += 1

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "CountingLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class LockArray:
    """One :class:`CountingLock` per bucket (``omp_lock_t lock[]``)."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"lock array size must be >= 0, got {size}")
        self._locks: List[CountingLock] = [CountingLock() for _ in range(size)]

    def __len__(self) -> int:
        return len(self._locks)

    def __getitem__(self, index: int) -> CountingLock:
        return self._locks[index]

    @property
    def total_acquisitions(self) -> int:
        return sum(lock.acquisitions for lock in self._locks)

    @property
    def total_contended(self) -> int:
        return sum(lock.contended for lock in self._locks)

    def acquisition_histogram(self) -> List[int]:
        """Acquisition count per lock — shows the power-law pile-up on
        the low-degree buckets that motivates ParMax (§4.2)."""
        return [lock.acquisitions for lock in self._locks]

    def publish(self, prefix: str) -> None:
        """Report contention gauges to the installed metrics registry.

        No-op (one global test) when observability is disabled; called by
        the ordering procedures after their parallel region drains.
        """
        reg = _obs._current
        if reg is None:
            return
        reg.add(f"{prefix}.acquisitions", self.total_acquisitions)
        reg.add(f"{prefix}.contended", self.total_contended)
        histogram = self.acquisition_histogram()
        if histogram:
            reg.gauge_max(f"{prefix}.hottest_lock", max(histogram))
