"""The OpenMP-like entry points: ``parallel_for`` and ``parallel_map``.

These are the only functions the algorithm layer calls; everything else
in :mod:`repro.parallel` is plumbing.  The mapping to OpenMP is direct::

    #pragma omp parallel for schedule(dynamic, 1)
    for (i = 0; i < n; i++) body(i);

becomes::

    parallel_for(n, body, num_threads=T, schedule="dynamic", chunk=1,
                 backend="threads")

The ``SIM`` backend is intentionally *not* reachable from here: simulated
execution needs per-iteration costs, which the generic loop body cannot
provide.  Simulated algorithms go through :mod:`repro.simx.parfor`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..exceptions import BackendError
from ..types import Backend, Schedule
from .backends import process as _process
from .backends import serial as _serial
from .backends import threads as _threads

__all__ = ["parallel_for", "parallel_map"]


def parallel_for(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int = 1,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    chunk: int = 1,
    backend: "Backend | str" = Backend.THREADS,
    fault_plan=None,
    on_worker_death: str = "raise",
    on_retry: Optional[Callable[[List[int]], None]] = None,
) -> List[List[int]]:
    """Run ``body(i, thread_id)`` for every ``i in range(n)``.

    The body is executed for its side effects (writes to shared arrays);
    return values are ignored.  Returns the per-thread iteration lists
    actually executed, which tests and traces use to verify scheduling.

    ``fault_plan`` / ``on_worker_death`` / ``on_retry`` configure
    deterministic fault injection and crash recovery — see
    :mod:`repro.faults`.
    """
    backend = Backend.coerce(backend)
    schedule = Schedule.coerce(schedule)
    if n < 0:
        raise BackendError(f"iteration count must be >= 0, got {n}")
    if backend is Backend.SERIAL or num_threads == 1:
        return _serial.run_parallel_for(
            n,
            body,
            num_threads=max(1, num_threads),
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            on_retry=on_retry,
        )
    if backend is Backend.THREADS:
        return _threads.run_parallel_for(
            n,
            body,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            on_retry=on_retry,
        )
    if backend is Backend.PROCESS:
        raise BackendError(
            "the process backend cannot run side-effect loop bodies "
            "(worker writes do not reach the parent); use parallel_map "
            "or the shared-memory APSP path in repro.core"
        )
    raise BackendError(
        f"backend {backend.value!r} is not valid for parallel_for; "
        "simulated execution goes through repro.simx"
    )


def parallel_map(
    n: int,
    fn: Callable[[int], Any],
    *,
    num_threads: int = 1,
    schedule: "Schedule | str" = Schedule.BLOCK,
    chunk: int = 1,
    backend: "Backend | str" = Backend.PROCESS,
    timeout: Optional[float] = None,
    fault_plan=None,
    on_worker_death: str = "raise",
    on_retry: Optional[Callable[[List[int]], None]] = None,
) -> List[Any]:
    """Evaluate ``fn(i)`` for every ``i`` and return results in order.

    ``timeout`` bounds each process round in seconds (process backend
    only); ``fault_plan`` / ``on_worker_death`` / ``on_retry`` configure
    fault injection and crash recovery — see :mod:`repro.faults`.
    """
    backend = Backend.coerce(backend)
    schedule = Schedule.coerce(schedule)
    if n < 0:
        raise BackendError(f"iteration count must be >= 0, got {n}")
    if backend is Backend.SERIAL or num_threads == 1:
        return [fn(i) for i in range(n)]
    if backend is Backend.PROCESS:
        return _process.run_parallel_map(
            n,
            fn,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            timeout=timeout,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            on_retry=on_retry,
        )
    if backend is Backend.THREADS:
        results: List[Any] = [None] * n

        def body(i: int, _thread_id: int) -> None:
            results[i] = fn(i)

        _threads.run_parallel_for(
            n,
            body,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            on_retry=on_retry,
        )
        return results
    raise BackendError(
        f"backend {backend.value!r} is not valid for parallel_map"
    )
