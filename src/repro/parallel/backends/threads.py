"""Real ``threading`` backend.

CPython's GIL serialises the bytecode of the loop bodies, so this backend
cannot show wall-clock speedup for pure-Python work — but it executes the
*true* concurrent code paths (shared distance matrix, per-bucket locks,
dynamic work-stealing counter), which is what the correctness claims are
about.  Numpy kernels inside the body do release the GIL for large
arrays, so some overlap is real.

Exceptions raised inside worker threads are captured and re-raised in the
calling thread (first one wins), so failures never vanish silently.

Worker *deaths* are a separate channel from application errors: an
injected :class:`~repro.faults.ThreadDeath` or
:class:`~repro.exceptions.FaultInjected` (see :mod:`repro.faults`) stops
one thread without aborting the others.  Under
``on_worker_death="retry"`` the iterations that thread claimed but never
finished are re-executed inline after the join — threads share the
caller's address space, so unlike the process backend there is no result
to re-collect, only side effects to complete.  ``on_worker_death="raise"``
surfaces a :class:`~repro.exceptions.BackendError` naming the thread.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from ...exceptions import BackendError, FaultInjected
from ...obs import metrics as _obs
from ...types import Schedule
from ..schedule import DynamicCounter, static_assignment

__all__ = ["run_parallel_for"]


def run_parallel_for(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int = 1,
    fault_plan=None,
    on_worker_death: str = "raise",
    on_retry: Optional[Callable[[List[int]], None]] = None,
) -> List[List[int]]:
    """Execute ``body(i, thread_id)`` on ``num_threads`` real threads.

    Returns the observed per-thread iteration lists (for the dynamic
    schedule this is a genuine runtime artefact, not a precomputation).
    Iterations recovered after a worker death are appended to the dead
    thread's list — the returned lists always cover every executed
    iteration exactly once.
    """
    if on_worker_death not in ("retry", "raise"):
        raise BackendError(
            f"on_worker_death must be 'retry' or 'raise', "
            f"got {on_worker_death!r}"
        )
    from ...faults import ThreadDeath

    plan = fault_plan.bind(num_threads) if fault_plan is not None else None
    executed: List[List[int]] = [[] for _ in range(num_threads)]
    # indices each thread claimed (and therefore owes); claimed minus
    # executed is exactly the work a dead thread lost
    claimed: List[List[int]] = [[] for _ in range(num_threads)]
    errors: List[BaseException] = []
    deaths: List[str] = []
    state_lock = threading.Lock()

    def record_error(exc: BaseException) -> None:
        with state_lock:
            errors.append(exc)

    def record_death(thread_id: int, exc: BaseException) -> None:
        with state_lock:
            deaths.append(f"worker thread {thread_id} died: {exc!r}")

    def make_injector(thread_id: int):
        if plan is None:
            return None
        from ...faults import WorkerFaultInjector

        return WorkerFaultInjector(plan, thread_id)

    if schedule is Schedule.DYNAMIC:
        counter = DynamicCounter(n, chunk)

        def worker(thread_id: int) -> None:
            mine = executed[thread_id]
            owed = claimed[thread_id]
            injector = make_injector(thread_id)
            try:
                # one wall-clock span per worker lifetime: the trace
                # recorder turns these into per-thread timeline tracks
                with _obs.span("parallel.worker"):
                    while not errors:
                        chunk_range = counter.next_chunk()
                        if not chunk_range:
                            return
                        owed.extend(chunk_range)
                        if injector is not None:
                            injector.on_claim()
                        for i in chunk_range:
                            if injector is not None:
                                injector.on_iteration(i)
                            body(i, thread_id)
                            mine.append(i)
            except (ThreadDeath, FaultInjected) as exc:
                record_death(thread_id, exc)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                record_error(exc)

    else:
        assignment = static_assignment(schedule, n, num_threads, chunk)

        def worker(thread_id: int) -> None:
            mine = executed[thread_id]
            owed = claimed[thread_id]
            injector = make_injector(thread_id)
            try:
                with _obs.span("parallel.worker"):
                    # a static assignment is one implicit claim
                    owed.extend(int(i) for i in assignment[thread_id])
                    if injector is not None and owed:
                        injector.on_claim()
                    for i in owed:
                        if errors:
                            return
                        if injector is not None:
                            injector.on_iteration(i)
                        body(i, thread_id)
                        mine.append(i)
            except (ThreadDeath, FaultInjected) as exc:
                record_death(thread_id, exc)
            except BaseException as exc:  # noqa: BLE001
                record_error(exc)

    threads = [
        threading.Thread(target=worker, args=(t,), name=f"repro-worker-{t}")
        for t in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    if deaths:
        _obs.counter_add("faults.worker_deaths", len(deaths))
        if on_worker_death == "raise":
            raise BackendError(
                f"{len(deaths)} worker thread(s) died: {deaths[0]} "
                "(set on_worker_death='retry' to re-execute lost work)"
            )
        missing: List[Tuple[int, int]] = []
        for t in range(num_threads):
            done = set(executed[t])
            missing.extend((i, t) for i in claimed[t] if i not in done)
        # when every worker died the dynamic counter still holds work
        # nobody ever claimed; drain it here or it would vanish silently
        if schedule is Schedule.DYNAMIC:
            while True:
                chunk_range = counter.next_chunk()
                if not chunk_range:
                    break
                missing.extend((i, 0) for i in chunk_range)
        if missing:
            _obs.counter_add("faults.recovered_indices", len(missing))
            _obs.counter_add("faults.retry_rounds")
            with _obs.span("faults.recovery"):
                if on_retry is not None:
                    on_retry(sorted(i for i, _ in missing))
                # every thread is joined: re-running inline on the
                # caller is race-free and needs no fresh workers
                for i, t in missing:
                    body(int(i), t)
                    executed[t].append(int(i))
    if schedule is Schedule.DYNAMIC:
        counter.publish()
    return executed
