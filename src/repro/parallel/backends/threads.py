"""Real ``threading`` backend.

CPython's GIL serialises the bytecode of the loop bodies, so this backend
cannot show wall-clock speedup for pure-Python work — but it executes the
*true* concurrent code paths (shared distance matrix, per-bucket locks,
dynamic work-stealing counter), which is what the correctness claims are
about.  Numpy kernels inside the body do release the GIL for large
arrays, so some overlap is real.

Exceptions raised inside worker threads are captured and re-raised in the
calling thread (first one wins), so failures never vanish silently.
"""

from __future__ import annotations

import threading
from typing import Callable, List

from ...obs import metrics as _obs
from ...types import Schedule
from ..schedule import DynamicCounter, static_assignment

__all__ = ["run_parallel_for"]


def run_parallel_for(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int = 1,
) -> List[List[int]]:
    """Execute ``body(i, thread_id)`` on ``num_threads`` real threads.

    Returns the observed per-thread iteration lists (for the dynamic
    schedule this is a genuine runtime artefact, not a precomputation).
    """
    executed: List[List[int]] = [[] for _ in range(num_threads)]
    errors: List[BaseException] = []
    error_lock = threading.Lock()

    def record_error(exc: BaseException) -> None:
        with error_lock:
            errors.append(exc)

    if schedule is Schedule.DYNAMIC:
        counter = DynamicCounter(n, chunk)

        def worker(thread_id: int) -> None:
            mine = executed[thread_id]
            try:
                # one wall-clock span per worker lifetime: the trace
                # recorder turns these into per-thread timeline tracks
                with _obs.span("parallel.worker"):
                    while not errors:
                        chunk_range = counter.next_chunk()
                        if not chunk_range:
                            return
                        for i in chunk_range:
                            body(i, thread_id)
                            mine.append(i)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                record_error(exc)

    else:
        assignment = static_assignment(schedule, n, num_threads, chunk)

        def worker(thread_id: int) -> None:
            mine = executed[thread_id]
            try:
                with _obs.span("parallel.worker"):
                    for i in assignment[thread_id]:
                        if errors:
                            return
                        body(int(i), thread_id)
                        mine.append(int(i))
            except BaseException as exc:  # noqa: BLE001
                record_error(exc)

    threads = [
        threading.Thread(target=worker, args=(t,), name=f"repro-worker-{t}")
        for t in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    if schedule is Schedule.DYNAMIC:
        counter.publish()
    return executed
