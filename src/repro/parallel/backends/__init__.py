"""Execution backends for the parallel runtime."""

from . import process, serial, threads

__all__ = ["serial", "threads", "process"]
