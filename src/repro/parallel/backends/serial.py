"""Single-threaded reference executor.

Runs the loop body in exactly the order the requested schedule would
issue iterations with one thread — which for every schedule is plain
index order — but still reports per-"thread" assignment so callers can
unit-test scheduling math through the same interface.
"""

from __future__ import annotations

from typing import Callable, List

from ...types import Schedule
from ..schedule import DynamicCounter, static_assignment

__all__ = ["run_parallel_for"]


def run_parallel_for(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int = 1,
) -> List[List[int]]:
    """Execute ``body(i, thread_id)`` for ``i in range(n)`` serially.

    Even though execution is serial, iterations are issued in the order a
    *real* run of the requested schedule would interleave them if every
    iteration took equal time: block/static schedules round-robin through
    the per-thread assignments, dynamic hands out indices in order to a
    rotating thread.  Returns the executed ``(thread -> iterations)``
    assignment for inspection.
    """
    executed: List[List[int]] = [[] for _ in range(num_threads)]
    if schedule is Schedule.DYNAMIC:
        counter = DynamicCounter(n, chunk)
        t = 0
        while True:
            chunk_range = counter.next_chunk()
            if not chunk_range:
                break
            for i in chunk_range:
                body(i, t)
                executed[t].append(i)
            t = (t + 1) % num_threads
        counter.publish()
        return executed

    assignment = static_assignment(schedule, n, num_threads, chunk)
    cursors = [0] * num_threads
    remaining = n
    # interleave round-robin across threads to mimic lockstep progress
    while remaining:
        for t in range(num_threads):
            if cursors[t] < len(assignment[t]):
                i = int(assignment[t][cursors[t]])
                body(i, t)
                executed[t].append(i)
                cursors[t] += 1
                remaining -= 1
    return executed
