"""Single-threaded reference executor.

Runs the loop body in exactly the order the requested schedule would
issue iterations with one thread — which for every schedule is plain
index order — but still reports per-"thread" assignment so callers can
unit-test scheduling math through the same interface.

Fault plans (:mod:`repro.faults`) are honoured on *virtual* workers: a
``kill`` stops one round-robin lane from claiming further work, a
``raise`` fires :class:`~repro.exceptions.FaultInjected` at its pinned
iteration, a ``stall`` sleeps.  Lost iterations are re-executed inline
under ``on_worker_death="retry"`` — which makes this backend the oracle
the crash-recovery property tests compare against.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...exceptions import BackendError, FaultInjected
from ...obs import metrics as _obs
from ...types import Schedule
from ..schedule import DynamicCounter, static_assignment

__all__ = ["run_parallel_for"]


def run_parallel_for(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int = 1,
    fault_plan=None,
    on_worker_death: str = "raise",
    on_retry: Optional[Callable[[List[int]], None]] = None,
) -> List[List[int]]:
    """Execute ``body(i, thread_id)`` for ``i in range(n)`` serially.

    Even though execution is serial, iterations are issued in the order a
    *real* run of the requested schedule would interleave them if every
    iteration took equal time: block/static schedules round-robin through
    the per-thread assignments, dynamic hands out indices in order to a
    rotating thread.  Returns the executed ``(thread -> iterations)``
    assignment for inspection.
    """
    if on_worker_death not in ("retry", "raise"):
        raise BackendError(
            f"on_worker_death must be 'retry' or 'raise', "
            f"got {on_worker_death!r}"
        )
    if fault_plan is not None:
        return _run_with_faults(
            n,
            body,
            num_threads=num_threads,
            schedule=schedule,
            chunk=chunk,
            fault_plan=fault_plan,
            on_worker_death=on_worker_death,
            on_retry=on_retry,
        )
    executed: List[List[int]] = [[] for _ in range(num_threads)]
    if schedule is Schedule.DYNAMIC:
        counter = DynamicCounter(n, chunk)
        t = 0
        while True:
            chunk_range = counter.next_chunk()
            if not chunk_range:
                break
            for i in chunk_range:
                body(i, t)
                executed[t].append(i)
            t = (t + 1) % num_threads
        counter.publish()
        return executed

    assignment = static_assignment(schedule, n, num_threads, chunk)
    cursors = [0] * num_threads
    remaining = n
    # interleave round-robin across threads to mimic lockstep progress
    while remaining:
        for t in range(num_threads):
            if cursors[t] < len(assignment[t]):
                i = int(assignment[t][cursors[t]])
                body(i, t)
                executed[t].append(i)
                cursors[t] += 1
                remaining -= 1
    return executed


def _run_with_faults(
    n: int,
    body: Callable[[int, int], None],
    *,
    num_threads: int,
    schedule: Schedule,
    chunk: int,
    fault_plan,
    on_worker_death: str,
    on_retry: Optional[Callable[[List[int]], None]],
) -> List[List[int]]:
    """Fault-aware twin of the clean serial paths (kept separate so a
    plan-free run executes byte-identical code to the seed)."""
    from ...faults import ThreadDeath, WorkerFaultInjector

    plan = fault_plan.bind(num_threads)
    injectors = [WorkerFaultInjector(plan, t) for t in range(num_threads)]
    executed: List[List[int]] = [[] for _ in range(num_threads)]
    alive = [True] * num_threads
    deaths: List[str] = []
    lost: List[Tuple[int, int]] = []  # (iteration, owning virtual worker)

    if schedule is Schedule.DYNAMIC:
        counter = DynamicCounter(n, chunk)
        t = 0
        while any(alive):
            if not alive[t]:
                t = (t + 1) % num_threads
                continue
            chunk_range = counter.next_chunk()
            if not chunk_range:
                break
            done = 0
            try:
                injectors[t].on_claim()
                for i in chunk_range:
                    injectors[t].on_iteration(i)
                    body(i, t)
                    executed[t].append(i)
                    done += 1
            except (ThreadDeath, FaultInjected) as exc:
                alive[t] = False
                deaths.append(f"virtual worker {t} died: {exc!r}")
                lost.extend((i, t) for i in list(chunk_range)[done:])
            t = (t + 1) % num_threads
        if not any(alive):
            # nobody left to claim the tail of the queue
            while True:
                chunk_range = counter.next_chunk()
                if not chunk_range:
                    break
                lost.extend((i, 0) for i in chunk_range)
        counter.publish()
    else:
        assignment = static_assignment(schedule, n, num_threads, chunk)
        for t in range(num_threads):
            if len(assignment[t]) == 0:
                continue
            try:
                injectors[t].on_claim()
            except (ThreadDeath, FaultInjected) as exc:
                alive[t] = False
                deaths.append(f"virtual worker {t} died: {exc!r}")
                lost.extend((int(i), t) for i in assignment[t])
        cursors = [0] * num_threads
        while True:
            progressed = False
            for t in range(num_threads):
                if not alive[t] or cursors[t] >= len(assignment[t]):
                    continue
                i = int(assignment[t][cursors[t]])
                cursors[t] += 1
                progressed = True
                try:
                    injectors[t].on_iteration(i)
                    body(i, t)
                    executed[t].append(i)
                except (ThreadDeath, FaultInjected) as exc:
                    alive[t] = False
                    deaths.append(f"virtual worker {t} died: {exc!r}")
                    lost.append((i, t))
                    lost.extend(
                        (int(j), t) for j in assignment[t][cursors[t]:]
                    )
            if not progressed:
                break

    if deaths:
        _obs.counter_add("faults.worker_deaths", len(deaths))
        if on_worker_death == "raise":
            raise BackendError(
                f"{len(deaths)} worker(s) died: {deaths[0]} "
                "(set on_worker_death='retry' to re-execute lost work)"
            )
    if lost:
        lost.sort()
        _obs.counter_add("faults.recovered_indices", len(lost))
        _obs.counter_add("faults.retry_rounds")
        with _obs.span("faults.recovery"):
            if on_retry is not None:
                on_retry([i for i, _ in lost])
            for i, t in lost:
                body(i, t)
                executed[t].append(i)
    return executed
