"""``multiprocessing`` backend.

This is the backend that can actually run Python loop bodies in parallel
on a multi-core host (each worker is a separate interpreter, no shared
GIL).  Two usage modes:

* :func:`run_parallel_map` — a generic fork-based map: the body computes
  a picklable result per iteration; mutations of parent memory do *not*
  propagate back.  Fork inheritance means closures over large read-only
  numpy arrays (the CSR graph) cost nothing to ship.
* Shared-state algorithms (the APSP distance matrix) instead allocate
  their matrix in :class:`SharedMatrix` so all workers write the same
  physical pages, mirroring the paper's shared-memory design.

Crash safety (ISSUE 4): the parent never blocks on a single pipe.  It
multiplexes result pipes *and* process sentinels through
``multiprocessing.connection.wait``, so an OOM-killed or segfaulted
worker is detected the moment its process object becomes ready instead
of hanging ``conn.recv()`` forever.  A dead pipe, undecodable (corrupt)
pipe data, a worker that exits without reporting, or a worker that
exceeds ``timeout`` all classify as a *worker death*; the
``on_worker_death`` policy then either surfaces a
:class:`~repro.exceptions.BackendError` naming the worker (``"raise"``)
or re-executes only the lost index ranges on fresh workers
(``"retry"``, bounded rounds with backoff).  Application exceptions
raised by ``fn`` itself are *not* deaths — they always surface.  All
processes are joined (terminated if necessary) and all pipes closed in
``finally``, so no path leaks zombies.

Deterministic fault injection (:mod:`repro.faults`) hooks the worker
entry points: a bound :class:`~repro.faults.WorkerFaultInjector` can
SIGKILL the worker's own process after m claims, stall it, corrupt its
result pipe, or raise inside ``fn`` — all counted in claims/iterations,
never wall time.

On platforms without ``fork`` (Windows) the map transparently degrades
to serial execution rather than failing.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from contextlib import contextmanager
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ...exceptions import BackendError, FaultInjected, ScheduleError
from ...obs import metrics as _obs
from ...types import Schedule
from ..schedule import static_assignment

__all__ = ["fork_available", "run_parallel_map", "SharedArray", "SharedMatrix"]

#: seconds to wait for a reaped worker before escalating to terminate()
_JOIN_GRACE = 5.0

#: default bounded-retry budget for ``on_worker_death="retry"``
DEFAULT_MAX_RETRIES = 3

#: base backoff before retry round r (doubles per round)
DEFAULT_RETRY_BACKOFF = 0.05


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_static(fn, indices, conn, injector=None) -> None:
    """Child entry for static schedules: evaluate an index batch.

    The whole assignment counts as one work claim, so kill/stall faults
    with ``after_claims == 1`` fire before any iteration runs and
    ``after_claims > 1`` never fires here.
    """
    out: List[Tuple[int, Any]] = []
    try:
        if injector is not None:
            injector.on_claim(conn)
        for i in indices:
            i = int(i)
            if injector is not None:
                injector.on_iteration(i)
            out.append((i, fn(i)))
        conn.send(("ok", out))
    except FaultInjected as exc:
        # injected failures are recoverable worker deaths, not bugs;
        # ship the partial results so only the rest is re-executed
        conn.send(("fault", (repr(exc), out)))
    except BaseException as exc:  # noqa: BLE001 — shipped to parent
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def _worker_dynamic(fn, counter, lock, n, chunk, conn, injector=None) -> None:
    """Child entry for the dynamic schedule: fetch-and-add work counter.

    ``counter`` is a ``multiprocessing.Value``; the paired ``lock`` makes
    the claim atomic across processes (matching the DynamicCounter the
    thread backend uses).  Fault hooks run *after* the claim, so a
    killed worker takes its claimed-but-unexecuted range down with it —
    exactly the lost-work shape recovery has to handle.
    """
    out: List[Tuple[int, Any]] = []
    try:
        while True:
            with lock:
                start = counter.value
                if start >= n:
                    break
                end = min(start + chunk, n)
                counter.value = end
            if injector is not None:
                injector.on_claim(conn)
            for i in range(start, end):
                if injector is not None:
                    injector.on_iteration(i)
                out.append((i, fn(i)))
        conn.send(("ok", out))
    except FaultInjected as exc:
        conn.send(("fault", (repr(exc), out)))
    except BaseException as exc:  # noqa: BLE001
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def _drain_worker(
    conn,
    worker: int,
    proc,
    results: List[Any],
    have: bytearray,
    deaths: List[str],
    errors: List[str],
) -> None:
    """Consume one worker's (single) result message, classifying it.

    A closed pipe (``EOFError``/``OSError``), undecodable pipe bytes,
    or a worker that exited without reporting are worker deaths; an
    explicit ``("error", ...)`` message is an application failure.
    """
    try:
        if conn.poll(0):
            status, payload = conn.recv()
        else:
            deaths.append(
                f"worker {worker} died before reporting "
                f"(exitcode {proc.exitcode})"
            )
            return
    except (EOFError, OSError) as exc:
        deaths.append(
            f"worker {worker} result pipe closed mid-message "
            f"({type(exc).__name__})"
        )
        return
    except Exception as exc:  # corrupt pipe: unpicklable bytes
        deaths.append(
            f"worker {worker} sent undecodable pipe data "
            f"({type(exc).__name__}: {exc})"
        )
        return
    if status == "ok":
        for i, value in payload:
            results[i] = value
            have[i] = 1
    elif status == "fault":
        reason, partial = payload
        for i, value in partial:
            results[i] = value
            have[i] = 1
        deaths.append(f"worker {worker} hit an injected fault: {reason}")
    else:
        errors.append(payload)


def _execute_round(
    procs: List,
    conns: List,
    results: List[Any],
    have: bytearray,
    timeout: Optional[float],
) -> Tuple[List[str], List[str]]:
    """Collect every worker's result or death; never hangs, never leaks.

    Multiplexes result pipes and process sentinels with
    ``multiprocessing.connection.wait`` so a crashed worker is noticed
    immediately; enforces ``timeout`` (seconds for the whole round) by
    terminating stragglers.  Joins/terminates all processes and closes
    all pipes in ``finally``.
    """
    deaths: List[str] = []
    errors: List[str] = []
    pending: Dict[Any, int] = {conn: w for w, conn in enumerate(conns)}
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while pending:
            sentinel_of = {procs[w].sentinel: w for w in pending.values()}
            waitables = list(pending) + list(sentinel_of)
            if deadline is None:
                ready = _conn_wait(waitables)
            else:
                budget = deadline - time.monotonic()
                ready = _conn_wait(waitables, timeout=max(0.0, budget))
                if not ready:
                    for conn, w in sorted(
                        pending.items(), key=lambda kv: kv[1]
                    ):
                        procs[w].terminate()
                        deaths.append(
                            f"worker {w} exceeded the {timeout:g}s timeout"
                        )
                        _obs.counter_add("faults.worker_timeouts")
                    pending.clear()
                    break
            for obj in ready:
                if obj in pending:
                    w = pending.pop(obj)
                    _drain_worker(
                        obj, w, procs[w], results, have, deaths, errors
                    )
                else:
                    w = sentinel_of.get(obj)
                    if w is None:
                        continue
                    conn = conns[w]
                    if conn in pending:  # died; pipe may hold a message
                        pending.pop(conn)
                        _drain_worker(
                            conn, w, procs[w], results, have, deaths,
                            errors,
                        )
    finally:
        for proc in procs:
            proc.join(timeout=_JOIN_GRACE)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_GRACE)
            if proc.is_alive():  # pragma: no cover — terminate ignored
                proc.kill()
                proc.join()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover — already closed
                pass
    return deaths, errors


def _spawn_static(
    ctx, fn, assignment: List[np.ndarray], plan, round: int
) -> Tuple[List, List]:
    from ...faults import WorkerFaultInjector

    procs, conns = [], []
    for w, indices in enumerate(assignment):
        injector = (
            WorkerFaultInjector(plan, w, round=round, hard=True)
            if plan is not None
            else None
        )
        parent, child = ctx.Pipe(duplex=False)
        procs.append(
            ctx.Process(
                target=_worker_static,
                args=(fn, indices.tolist(), child, injector),
            )
        )
        conns.append(parent)
    return procs, conns


def _spawn_dynamic(
    ctx, fn, n: int, num_threads: int, chunk: int, plan, round: int
) -> Tuple[List, List]:
    from ...faults import WorkerFaultInjector

    counter = ctx.Value("l", 0, lock=False)
    lock = ctx.Lock()
    procs, conns = [], []
    for w in range(num_threads):
        injector = (
            WorkerFaultInjector(plan, w, round=round, hard=True)
            if plan is not None
            else None
        )
        parent, child = ctx.Pipe(duplex=False)
        procs.append(
            ctx.Process(
                target=_worker_dynamic,
                args=(fn, counter, lock, n, chunk, child, injector),
            )
        )
        conns.append(parent)
    return procs, conns


def run_parallel_map(
    n: int,
    fn: Callable[[int], Any],
    *,
    num_threads: int,
    schedule: Schedule = Schedule.BLOCK,
    chunk: int = 1,
    timeout: Optional[float] = None,
    on_worker_death: str = "raise",
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    fault_plan=None,
    on_retry: Optional[Callable[[List[int]], None]] = None,
) -> List[Any]:
    """Evaluate ``fn(i)`` for ``i in range(n)`` across worker processes.

    Workers are raw ``fork`` processes, not a ``Pool``: fork inheritance
    lets ``fn`` be any closure (e.g. over a CSR graph) without pickling
    it; only the *results* cross the process boundary, so they must be
    picklable.  Results come back ordered by index.

    Crash policy: ``on_worker_death="raise"`` (default) surfaces a
    :class:`BackendError` naming the dead worker; ``"retry"``
    re-executes only the indices that never produced a result, on fresh
    workers, for at most ``max_retries`` rounds with exponential
    ``retry_backoff``.  ``on_retry`` (if given) is called with the lost
    index list before each retry round so shared state those indices
    may have half-written can be reset.  ``timeout`` bounds each round
    in seconds; stragglers are terminated and handled by the same
    policy.  ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
    deterministic faults into the workers — see :mod:`repro.faults`.
    """
    if n < 0:
        raise BackendError(f"iteration count must be >= 0, got {n}")
    if chunk < 1:
        raise ScheduleError(
            f"chunk must be >= 1, got {chunk} (a non-positive chunk "
            "would make dynamic workers spin forever)"
        )
    if on_worker_death not in ("retry", "raise"):
        raise BackendError(
            f"on_worker_death must be 'retry' or 'raise', "
            f"got {on_worker_death!r}"
        )
    if max_retries < 0:
        raise BackendError(f"max_retries must be >= 0, got {max_retries}")
    if timeout is not None and timeout <= 0:
        raise BackendError(f"timeout must be positive, got {timeout!r}")
    if n == 0:
        return []
    if num_threads <= 1 or not fork_available():
        return [fn(i) for i in range(n)]

    plan = fault_plan.bind(num_threads) if fault_plan is not None else None
    ctx = multiprocessing.get_context("fork")
    results: List[Any] = [None] * n
    have = bytearray(n)

    if schedule is Schedule.DYNAMIC:
        procs, conns = _spawn_dynamic(
            ctx, fn, n, num_threads, chunk, plan, 0
        )
    else:
        assignment = static_assignment(schedule, n, num_threads, chunk)
        procs, conns = _spawn_static(ctx, fn, assignment, plan, 0)
    for proc in procs:
        proc.start()
    deaths, errors = _execute_round(procs, conns, results, have, timeout)
    if errors:
        raise BackendError(
            f"{len(errors)} worker process(es) failed: {errors[0]}"
        )
    if deaths:
        _obs.counter_add("faults.worker_deaths", len(deaths))
        if on_worker_death == "raise":
            raise BackendError(
                f"{len(deaths)} worker process(es) died: {deaths[0]} "
                "(set on_worker_death='retry' to re-execute lost work)"
            )

    missing = [i for i in range(n) if not have[i]]
    if missing:
        _obs.counter_add("faults.recovered_indices", len(missing))
    rounds = 0
    while missing:
        if rounds >= max_retries:
            raise BackendError(
                f"{len(missing)} index(es) still unrecovered after "
                f"{max_retries} retry round(s); first death: {deaths[0]}"
            )
        rounds += 1
        _obs.counter_add("faults.retry_rounds")
        with _obs.span("faults.recovery"):
            if on_retry is not None:
                on_retry(list(missing))
            if retry_backoff > 0:
                time.sleep(retry_backoff * (2 ** (rounds - 1)))
            workers = min(num_threads, len(missing))
            blocks = [
                block
                for block in np.array_split(
                    np.asarray(missing, dtype=np.int64), workers
                )
                if block.size
            ]
            procs, conns = _spawn_static(ctx, fn, blocks, plan, rounds)
            for proc in procs:
                proc.start()
            deaths, errors = _execute_round(
                procs, conns, results, have, timeout
            )
        if errors:
            raise BackendError(
                f"{len(errors)} worker process(es) failed during "
                f"recovery: {errors[0]}"
            )
        if deaths:
            _obs.counter_add("faults.worker_deaths", len(deaths))
        missing = [i for i in missing if not have[i]]
    return results


def _release_segment(shm, owner_pid: int) -> None:
    """Finalizer: unlink a segment, but only in the process that owns it.

    Fork children inherit the :class:`SharedArray` object; without the
    pid guard a child's interpreter shutdown would unlink a segment the
    parent is still using.
    """
    if os.getpid() != owner_pid:
        return
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError, BufferError):  # pragma: no cover
        pass


class SharedArray:
    """A numpy array living in ``multiprocessing.shared_memory``.

    Construction allocates the segment in the parent; workers created by
    fork inherit the mapping directly (writes are visible both ways).
    :meth:`close` unlinks the segment — use the :func:`SharedArray.allocate`
    context manager in library code so segments never leak.  Allocation
    is exception-safe (a failing ``np.ndarray`` view unlinks the fresh
    segment before re-raising) and a pid-guarded ``weakref`` finalizer
    reclaims the segment even when an abnormal exit path skips
    :meth:`close`.
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64) -> None:
        from multiprocessing import shared_memory

        if any(int(s) < 0 for s in shape):
            raise BackendError("array dimensions must be non-negative")
        try:
            dtype = np.dtype(dtype)
        except TypeError as exc:
            raise BackendError(f"bad shared-array dtype: {exc}") from None
        if dtype.hasobject:
            raise BackendError(
                "shared arrays need a fixed-size plain dtype, "
                f"got {dtype!r} (object references cannot cross processes)"
            )
        size = int(np.prod(shape)) if shape else 1
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, size * dtype.itemsize)
        )
        self._closed = False
        try:
            self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        except BaseException:
            self._closed = True
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            raise
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm, os.getpid()
        )

    @classmethod
    @contextmanager
    def allocate(
        cls, shape: Tuple[int, ...], dtype=np.float64
    ) -> Iterator["SharedArray"]:
        arr = cls(shape, dtype)
        try:
            yield arr
        finally:
            arr.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # drop the array view before releasing the buffer
        self.array = None  # type: ignore[assignment]
        self._finalizer.detach()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass


class SharedMatrix(SharedArray):
    """2-D float64 :class:`SharedArray` — the APSP distance matrix."""

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__((rows, cols), np.float64)

    @classmethod
    @contextmanager
    def allocate(  # type: ignore[override]
        cls, rows: int, cols: int
    ) -> Iterator["SharedMatrix"]:
        matrix = cls(rows, cols)
        try:
            yield matrix
        finally:
            matrix.close()
