"""``multiprocessing`` backend.

This is the backend that can actually run Python loop bodies in parallel
on a multi-core host (each worker is a separate interpreter, no shared
GIL).  Two usage modes:

* :func:`run_parallel_map` — a generic fork-based map: the body computes
  a picklable result per iteration; mutations of parent memory do *not*
  propagate back.  Fork inheritance means closures over large read-only
  numpy arrays (the CSR graph) cost nothing to ship.
* Shared-state algorithms (the APSP distance matrix) instead allocate
  their matrix in :class:`SharedMatrix` so all workers write the same
  physical pages, mirroring the paper's shared-memory design.

On platforms without ``fork`` (Windows) the map transparently degrades
to serial execution rather than failing.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Tuple

import numpy as np

from ...exceptions import BackendError
from ...types import Schedule
from ..schedule import static_assignment

__all__ = ["fork_available", "run_parallel_map", "SharedArray", "SharedMatrix"]


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_static(fn, indices, conn) -> None:
    """Child entry for static schedules: evaluate an index batch."""
    try:
        out = [(int(i), fn(int(i))) for i in indices]
        conn.send(("ok", out))
    except BaseException as exc:  # noqa: BLE001 — shipped to parent
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def _worker_dynamic(fn, counter, lock, n, chunk, conn) -> None:
    """Child entry for the dynamic schedule: fetch-and-add work counter.

    ``counter`` is a ``multiprocessing.Value``; the paired ``lock`` makes
    the claim atomic across processes (matching the DynamicCounter the
    thread backend uses).
    """
    try:
        out = []
        while True:
            with lock:
                start = counter.value
                if start >= n:
                    break
                end = min(start + chunk, n)
                counter.value = end
            for i in range(start, end):
                out.append((i, fn(i)))
        conn.send(("ok", out))
    except BaseException as exc:  # noqa: BLE001
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


def run_parallel_map(
    n: int,
    fn: Callable[[int], Any],
    *,
    num_threads: int,
    schedule: Schedule = Schedule.BLOCK,
    chunk: int = 1,
) -> List[Any]:
    """Evaluate ``fn(i)`` for ``i in range(n)`` across worker processes.

    Workers are raw ``fork`` processes, not a ``Pool``: fork inheritance
    lets ``fn`` be any closure (e.g. over a CSR graph) without pickling
    it; only the *results* cross the process boundary, so they must be
    picklable.  Results come back ordered by index.
    """
    if n == 0:
        return []
    if num_threads <= 1 or not fork_available():
        return [fn(i) for i in range(n)]

    ctx = multiprocessing.get_context("fork")
    procs = []
    parent_conns = []
    if schedule is Schedule.DYNAMIC:
        counter = ctx.Value("l", 0, lock=False)
        lock = ctx.Lock()
        for _ in range(num_threads):
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_dynamic,
                args=(fn, counter, lock, n, chunk, child),
            )
            procs.append(proc)
            parent_conns.append(parent)
    else:
        assignment = static_assignment(schedule, n, num_threads, chunk)
        for indices in assignment:
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_static, args=(fn, indices.tolist(), child)
            )
            procs.append(proc)
            parent_conns.append(parent)

    for proc in procs:
        proc.start()
    results: List[Any] = [None] * n
    failures: List[str] = []
    for conn in parent_conns:
        status, payload = conn.recv()
        if status == "ok":
            for i, value in payload:
                results[i] = value
        else:
            failures.append(payload)
    for proc in procs:
        proc.join()
    if failures:
        raise BackendError(
            f"{len(failures)} worker process(es) failed: {failures[0]}"
        )
    return results


class SharedArray:
    """A numpy array living in ``multiprocessing.shared_memory``.

    Construction allocates the segment in the parent; workers created by
    fork inherit the mapping directly (writes are visible both ways).
    :meth:`close` unlinks the segment — use the :func:`SharedArray.allocate`
    context manager in library code so segments never leak.
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64) -> None:
        from multiprocessing import shared_memory

        if any(int(s) < 0 for s in shape):
            raise BackendError("array dimensions must be non-negative")
        dtype = np.dtype(dtype)
        size = int(np.prod(shape)) if shape else 1
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, size * dtype.itemsize)
        )
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self._closed = False

    @classmethod
    @contextmanager
    def allocate(
        cls, shape: Tuple[int, ...], dtype=np.float64
    ) -> Iterator["SharedArray"]:
        arr = cls(shape, dtype)
        try:
            yield arr
        finally:
            arr.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # drop the array view before releasing the buffer
        self.array = None  # type: ignore[assignment]
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass


class SharedMatrix(SharedArray):
    """2-D float64 :class:`SharedArray` — the APSP distance matrix."""

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__((rows, cols), np.float64)

    @classmethod
    @contextmanager
    def allocate(  # type: ignore[override]
        cls, rows: int, cols: int
    ) -> Iterator["SharedMatrix"]:
        matrix = cls(rows, cols)
        try:
            yield matrix
        finally:
            matrix.close()
