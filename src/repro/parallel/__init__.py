"""OpenMP-like shared-memory parallel runtime substrate.

Public surface:

* :func:`parallel_for` / :func:`parallel_map` — the loop entry points.
* :class:`~repro.types.Schedule` / :class:`~repro.types.Backend` — policy
  enums (re-exported here for convenience).
* :class:`LockArray` — per-bucket locks for the ordering procedures.
* :class:`AtomicCounter`, :class:`AtomicFlagArray` — thread-safe helpers.
* Scheduling math: :func:`block_assignment`,
  :func:`static_cyclic_assignment`, :class:`DynamicCounter`.
"""

from ..types import Backend, Schedule
from .api import parallel_for, parallel_map
from .atomic import AtomicCounter, AtomicFlagArray
from .locks import CountingLock, LockArray
from .schedule import (
    DynamicCounter,
    block_assignment,
    static_assignment,
    static_cyclic_assignment,
)
from .backends.process import SharedArray, SharedMatrix, fork_available

__all__ = [
    "Backend",
    "Schedule",
    "parallel_for",
    "parallel_map",
    "AtomicCounter",
    "AtomicFlagArray",
    "CountingLock",
    "LockArray",
    "DynamicCounter",
    "block_assignment",
    "static_assignment",
    "static_cyclic_assignment",
    "SharedArray",
    "SharedMatrix",
    "fork_available",
]
