"""Tiny atomic primitives for the real-thread backend."""

from __future__ import annotations

import threading

__all__ = ["AtomicCounter", "AtomicFlagArray"]


class AtomicCounter:
    """Lock-guarded integer counter (fetch-and-add semantics)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, start: int = 0) -> None:
        self._value = int(start)
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta`` and return the *previous* value."""
        with self._lock:
            old = self._value
            self._value += delta
        return old

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class AtomicFlagArray:
    """Boolean flag vector with release-after-write semantics.

    The parallel APSP algorithms publish "row ``t`` of D is final" by
    setting ``flag[t]``.  Readers that observe a set flag may read the
    row; readers that miss it merely lose a reuse opportunity — the
    algorithm stays correct either way (the paper's exactness claim, §5).
    Under CPython the GIL already serialises the byte-sized stores, so a
    plain bytearray suffices; the class exists so the intent is explicit
    and so the simulator can share the same interface.
    """

    __slots__ = ("_flags",)

    def __init__(self, size: int) -> None:
        self._flags = bytearray(size)

    def __len__(self) -> int:
        return len(self._flags)

    def set(self, index: int) -> None:
        self._flags[index] = 1

    def get(self, index: int) -> bool:
        return self._flags[index] != 0

    def count_set(self) -> int:
        return sum(self._flags)
